#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "catalog/tuple.h"
#include "core/upi.h"
#include "core/upi_key.h"
#include "datagen/dblp.h"
#include "prob/confidence.h"
#include "storage/db_env.h"

namespace upi::core {
namespace {

using catalog::Schema;
using catalog::Tuple;
using catalog::TupleId;
using catalog::Value;
using catalog::ValueType;
using prob::Alternative;
using prob::DiscreteDistribution;

DiscreteDistribution Dist(std::vector<Alternative> alts) {
  return DiscreteDistribution::Make(std::move(alts)).ValueOrDie();
}

Schema PaperSchema() {
  return Schema({{"Name", ValueType::kString},
                 {"Institution", ValueType::kDiscrete},
                 {"Country", ValueType::kDiscrete}});
}

// The paper's running example (Tables 1 and 4).
std::vector<Tuple> PaperTuples() {
  std::vector<Tuple> tuples;
  tuples.push_back(Tuple(1, 0.9,
                         {Value::String("Alice"),
                          Value::Discrete(Dist({{"Brown", 0.8}, {"MIT", 0.2}})),
                          Value::Discrete(Dist({{"US", 1.0}}))}));
  tuples.push_back(Tuple(2, 1.0,
                         {Value::String("Bob"),
                          Value::Discrete(Dist({{"MIT", 0.95}, {"UCB", 0.05}})),
                          Value::Discrete(Dist({{"US", 1.0}}))}));
  tuples.push_back(
      Tuple(3, 0.8,
            {Value::String("Carol"),
             Value::Discrete(Dist({{"Brown", 0.6}, {"U.Tokyo", 0.4}})),
             Value::Discrete(Dist({{"US", 0.6}, {"Japan", 0.4}}))}));
  return tuples;
}

UpiOptions PaperOptions() {
  UpiOptions opt;
  opt.cluster_column = 1;
  opt.cutoff = 0.10;  // Table 3 uses C = 10%
  opt.charge_open_per_query = false;
  return opt;
}

TEST(UpiKeyTest, RoundTripAndOrder) {
  std::string k1 = EncodeUpiKey("MIT", 0.95, 2);
  std::string k2 = EncodeUpiKey("MIT", 0.18, 1);
  std::string k3 = EncodeUpiKey("UCB", 0.05, 2);
  EXPECT_LT(k1, k2);  // same value, higher probability first
  EXPECT_LT(k2, k3);  // value ascending
  UpiKey decoded;
  ASSERT_TRUE(DecodeUpiKey(k1, &decoded).ok());
  EXPECT_EQ(decoded.attr, "MIT");
  EXPECT_NEAR(decoded.prob, 0.95, 1e-8);
  EXPECT_EQ(decoded.id, 2u);
}

TEST(UpiKeyTest, PrefixCoversValueOnly) {
  std::string prefix = UpiKeyPrefix("MIT");
  EXPECT_EQ(EncodeUpiKey("MIT", 0.95, 2).substr(0, prefix.size()), prefix);
  EXPECT_NE(EncodeUpiKey("MITx", 0.95, 2).substr(0, prefix.size()), prefix);
}

TEST(UpiTest, PaperTable2HeapLayout) {
  // A naive UPI (C=0) duplicates every alternative in heap order:
  // Brown(72%) Alice, Brown(48%) Carol, MIT(95%) Bob, MIT(18%) Alice,
  // UCB(5%) Bob, U.Tokyo(32%) Carol.
  storage::DbEnv env;
  UpiOptions opt = PaperOptions();
  opt.cutoff = 0.0;
  auto upi =
      Upi::Build(&env, "author", PaperSchema(), opt, {}, PaperTuples()).ValueOrDie();
  std::vector<std::pair<std::string, TupleId>> order;
  upi->ScanHeap([&](std::string_view key, std::string_view) {
    UpiKey k;
    ASSERT_TRUE(DecodeUpiKey(key, &k).ok());
    order.push_back({k.attr, k.id});
  });
  std::vector<std::pair<std::string, TupleId>> expected = {
      {"Brown", 1}, {"Brown", 3}, {"MIT", 2},
      {"MIT", 1},   {"U.Tokyo", 3}, {"UCB", 2}};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(upi->cutoff_index()->num_entries(), 0u);
}

TEST(UpiTest, PaperTable3CutoffPlacement) {
  // With C=10%, only Bob's UCB (5%) entry moves to the cutoff index;
  // U.Tokyo (32%) and MIT(18%) stay (Table 3).
  storage::DbEnv env;
  auto upi = Upi::Build(&env, "author", PaperSchema(), PaperOptions(), {},
                        PaperTuples())
                 .ValueOrDie();
  EXPECT_EQ(upi->heap_entries(), 5u);
  EXPECT_EQ(upi->cutoff_index()->num_entries(), 1u);
  std::vector<CutoffIndex::PointerEntry> ptrs;
  ASSERT_TRUE(upi->cutoff_index()->CollectPointers("UCB", 0.0, &ptrs).ok());
  ASSERT_EQ(ptrs.size(), 1u);
  EXPECT_EQ(ptrs[0].entry.id, 2u);
  // The pointer names Bob's first alternative: MIT at 95%.
  UpiKey target;
  ASSERT_TRUE(DecodeUpiKey(ptrs[0].heap_key, &target).ok());
  EXPECT_EQ(target.attr, "MIT");
  EXPECT_NEAR(target.prob, 0.95, 1e-8);
}

TEST(UpiTest, FirstAlternativeStaysInHeapEvenBelowCutoff) {
  // Algorithm 1: "If a value has probability lower than C, but is the first
  // possible value, we leave the tuple in the UPI."
  storage::DbEnv env;
  UpiOptions opt = PaperOptions();
  opt.cutoff = 0.5;
  std::vector<Tuple> tuples;
  tuples.push_back(Tuple(7, 1.0,
                         {Value::String("Dave"),
                          Value::Discrete(Dist({{"X", 0.3}, {"Y", 0.25}})),
                          Value::Discrete(Dist({{"US", 1.0}}))}));
  auto upi =
      Upi::Build(&env, "author", PaperSchema(), opt, {}, tuples).ValueOrDie();
  EXPECT_EQ(upi->heap_entries(), 1u);   // X stays although 0.3 < 0.5
  EXPECT_EQ(upi->cutoff_index()->num_entries(), 1u);  // Y goes to cutoff
  std::vector<PtqMatch> out;
  ASSERT_TRUE(upi->QueryPtq("X", 0.1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 7u);
}

TEST(UpiTest, Query1FromThePaper) {
  // SELECT * WHERE Institution=MIT: {(Alice, 18%), (Bob, 95%)}.
  storage::DbEnv env;
  auto upi = Upi::Build(&env, "author", PaperSchema(), PaperOptions(), {},
                        PaperTuples())
                 .ValueOrDie();
  std::vector<PtqMatch> out;
  ASSERT_TRUE(upi->QueryPtq("MIT", 0.10, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 2u);
  EXPECT_NEAR(out[0].confidence, 0.95, 1e-8);
  EXPECT_EQ(out[1].id, 1u);
  EXPECT_NEAR(out[1].confidence, 0.18, 1e-8);
  EXPECT_EQ(out[0].tuple.Get(0).str(), "Bob");

  out.clear();
  ASSERT_TRUE(upi->QueryPtq("MIT", 0.5, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2u);
}

TEST(UpiTest, QueryBelowCutoffFollowsPointers) {
  storage::DbEnv env;
  auto upi = Upi::Build(&env, "author", PaperSchema(), PaperOptions(), {},
                        PaperTuples())
                 .ValueOrDie();
  // UCB@5% lives only in the cutoff index; QT=1% < C=10% must find it.
  std::vector<PtqMatch> out;
  ASSERT_TRUE(upi->QueryPtq("UCB", 0.01, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2u);
  EXPECT_NEAR(out[0].confidence, 0.05, 1e-8);
  EXPECT_EQ(out[0].tuple.Get(0).str(), "Bob");
  // ... while QT=10% >= C skips the cutoff index and finds nothing.
  out.clear();
  ASSERT_TRUE(upi->QueryPtq("UCB", 0.10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(UpiTest, InsertMatchesBulkBuild) {
  storage::DbEnv env1, env2;
  auto built = Upi::Build(&env1, "a", PaperSchema(), PaperOptions(), {},
                          PaperTuples())
                   .ValueOrDie();
  Upi incremental(&env2, "b", PaperSchema(), PaperOptions());
  for (const Tuple& t : PaperTuples()) ASSERT_TRUE(incremental.Insert(t).ok());
  EXPECT_EQ(built->heap_entries(), incremental.heap_entries());
  EXPECT_EQ(built->cutoff_index()->num_entries(),
            incremental.cutoff_index()->num_entries());
  for (const char* v : {"MIT", "Brown", "UCB", "U.Tokyo"}) {
    std::vector<PtqMatch> r1, r2;
    ASSERT_TRUE(built->QueryPtq(v, 0.01, &r1).ok());
    ASSERT_TRUE(incremental.QueryPtq(v, 0.01, &r2).ok());
    ASSERT_EQ(r1.size(), r2.size()) << v;
    for (size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i].id, r2[i].id);
      EXPECT_NEAR(r1[i].confidence, r2[i].confidence, 1e-8);
    }
  }
}

TEST(UpiTest, DeleteRemovesAllTraces) {
  storage::DbEnv env;
  Upi upi(&env, "a", PaperSchema(), PaperOptions());
  auto tuples = PaperTuples();
  for (const Tuple& t : tuples) ASSERT_TRUE(upi.Insert(t).ok());
  ASSERT_TRUE(upi.Delete(tuples[1]).ok());  // Bob
  EXPECT_EQ(upi.num_tuples(), 2u);
  EXPECT_EQ(upi.cutoff_index()->num_entries(), 0u);  // UCB pointer gone
  std::vector<PtqMatch> out;
  ASSERT_TRUE(upi.QueryPtq("MIT", 0.01, &out).ok());
  ASSERT_EQ(out.size(), 1u);  // only Alice remains
  EXPECT_EQ(out[0].id, 1u);
}

TEST(UpiTest, TopKTerminatesEarly) {
  storage::DbEnv env;
  auto upi = Upi::Build(&env, "a", PaperSchema(), PaperOptions(), {},
                        PaperTuples())
                 .ValueOrDie();
  std::vector<PtqMatch> out;
  ASSERT_TRUE(upi->QueryTopK("MIT", 1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2u);  // Bob, the highest confidence
  out.clear();
  ASSERT_TRUE(upi->QueryTopK("MIT", 10, &out).ok());
  EXPECT_EQ(out.size(), 2u);  // only two MIT tuples exist
}

TEST(UpiTest, SecondaryIndexPaperTable5) {
  // Secondary on Country; Carol's Japan entry has confidence 40%*80%=32%
  // and carries pointers to both Brown and U.Tokyo copies.
  storage::DbEnv env;
  auto upi = Upi::Build(&env, "a", PaperSchema(), PaperOptions(), {2},
                        PaperTuples())
                 .ValueOrDie();
  SecondaryIndex* sec = upi->secondary(2);
  ASSERT_NE(sec, nullptr);
  std::vector<SecondaryEntry> entries;
  ASSERT_TRUE(sec->Collect("Japan", 0.0, &entries).ok());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key.id, 3u);
  EXPECT_NEAR(entries[0].key.prob, 0.32, 1e-8);
  ASSERT_EQ(entries[0].pointers.size(), 2u);
  EXPECT_EQ(entries[0].pointers[0].attr, "Brown");
  EXPECT_EQ(entries[0].pointers[1].attr, "U.Tokyo");
  // Bob's US entry: MIT pointer plus <cutoff> flag (UCB was cut off).
  entries.clear();
  ASSERT_TRUE(sec->Collect("US", 0.91, &entries).ok());
  ASSERT_EQ(entries.size(), 1u);  // only Bob has US above 91%
  EXPECT_EQ(entries[0].key.id, 2u);
  ASSERT_EQ(entries[0].pointers.size(), 1u);
  EXPECT_EQ(entries[0].pointers[0].attr, "MIT");
  EXPECT_TRUE(entries[0].has_cutoff);
}

TEST(UpiTest, SecondaryQueryPaperExample) {
  // SELECT * WHERE Country=US, QT=80% -> Bob (100%) and Alice (90%).
  storage::DbEnv env;
  auto upi = Upi::Build(&env, "a", PaperSchema(), PaperOptions(), {2},
                        PaperTuples())
                 .ValueOrDie();
  for (SecondaryAccessMode mode :
       {SecondaryAccessMode::kTailored, SecondaryAccessMode::kFirstPointer}) {
    std::vector<PtqMatch> out;
    ASSERT_TRUE(upi->QueryBySecondary(2, "US", 0.8, mode, &out).ok());
    std::set<TupleId> ids;
    for (const auto& m : out) ids.insert(m.id);
    EXPECT_EQ(ids, (std::set<TupleId>{1, 2}));
    for (const auto& m : out) {
      if (m.id == 1) {
        EXPECT_NEAR(m.confidence, 0.9, 1e-8);
      }
      if (m.id == 2) {
        EXPECT_NEAR(m.confidence, 1.0, 1e-8);
      }
    }
  }
}

TEST(UpiTest, TailoredAccessPrefersSharedRegions) {
  // Alice's tailored fetch should come from the MIT region because Bob (a
  // single-pointer entry) pins MIT — the Section 3.2 walkthrough.
  storage::DbEnv env;
  UpiOptions opt = PaperOptions();
  opt.max_secondary_pointers = 10;
  auto upi =
      Upi::Build(&env, "a", PaperSchema(), opt, {2}, PaperTuples()).ValueOrDie();

  // Count distinct clustered-attribute regions fetched under each mode by
  // instrumenting through the returned tuples' institutions is not possible
  // (tuples are identical); instead verify via seek accounting on a cold
  // cache: tailored access must not do more I/O than first-pointer access.
  env.ColdCache();
  sim::StatsWindow w1(env.disk());
  std::vector<PtqMatch> out1;
  ASSERT_TRUE(upi->QueryBySecondary(2, "US", 0.8,
                                    SecondaryAccessMode::kTailored, &out1)
                  .ok());
  double tailored_ms = w1.ElapsedMs();

  env.ColdCache();
  sim::StatsWindow w2(env.disk());
  std::vector<PtqMatch> out2;
  ASSERT_TRUE(upi->QueryBySecondary(2, "US", 0.8,
                                    SecondaryAccessMode::kFirstPointer, &out2)
                  .ok());
  double first_ms = w2.ElapsedMs();
  EXPECT_EQ(out1.size(), out2.size());
  EXPECT_LE(tailored_ms, first_ms + 1e-9);
}

// --- Property test: UPI answers == possible-world brute force. -------------

class UpiOracleTest : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(UpiOracleTest, MatchesBruteForce) {
  auto [cutoff, seed] = GetParam();
  datagen::DblpConfig cfg;
  cfg.num_authors = 400;
  cfg.num_institutions = 60;
  cfg.seed = seed;
  datagen::DblpGenerator gen(cfg);
  auto tuples = gen.GenerateAuthors();

  storage::DbEnv env;
  UpiOptions opt;
  opt.cluster_column = datagen::AuthorCols::kInstitution;
  opt.cutoff = cutoff;
  opt.charge_open_per_query = false;
  auto upi = Upi::Build(&env, "a", datagen::DblpGenerator::AuthorSchema(), opt,
                        {datagen::AuthorCols::kCountry}, tuples)
                 .ValueOrDie();

  Rng rng(seed * 7 + 1);
  for (int trial = 0; trial < 30; ++trial) {
    std::string value = gen.InstitutionName(rng.Uniform(cfg.num_institutions));
    double qt = rng.NextDouble() * 0.6 + 0.01;

    std::map<TupleId, double> oracle;
    for (const Tuple& t : tuples) {
      double conf = t.ConfidenceOf(datagen::AuthorCols::kInstitution, value);
      if (conf >= qt && conf > 0) oracle[t.id()] = conf;
    }
    std::vector<PtqMatch> out;
    ASSERT_TRUE(upi->QueryPtq(value, qt, &out).ok());
    std::map<TupleId, double> got;
    for (const auto& m : out) got[m.id] = m.confidence;
    ASSERT_EQ(got.size(), oracle.size())
        << "value=" << value << " qt=" << qt << " C=" << cutoff;
    for (const auto& [id, conf] : oracle) {
      ASSERT_TRUE(got.contains(id));
      EXPECT_NEAR(got[id], conf, 1e-6);
    }
  }

  // Secondary queries against the country oracle.
  for (int trial = 0; trial < 15; ++trial) {
    std::string value = gen.CountryName(rng.Uniform(cfg.num_countries));
    double qt = rng.NextDouble() * 0.6 + 0.01;
    std::map<TupleId, double> oracle;
    for (const Tuple& t : tuples) {
      double conf = t.ConfidenceOf(datagen::AuthorCols::kCountry, value);
      if (conf >= qt && conf > 0) oracle[t.id()] = conf;
    }
    std::vector<PtqMatch> out;
    ASSERT_TRUE(upi->QueryBySecondary(datagen::AuthorCols::kCountry, value, qt,
                                      SecondaryAccessMode::kTailored, &out)
                    .ok());
    std::map<TupleId, double> got;
    for (const auto& m : out) got[m.id] = m.confidence;
    ASSERT_EQ(got.size(), oracle.size()) << "country=" << value << " qt=" << qt;
    for (const auto& [id, conf] : oracle) {
      ASSERT_TRUE(got.contains(id));
      EXPECT_NEAR(got[id], conf, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CutoffsAndSeeds, UpiOracleTest,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.3),
                       ::testing::Values(uint64_t{1}, uint64_t{2})));

TEST(SecondaryIndexTest, PointerCodecRoundTrip) {
  std::vector<SecondaryPointer> ptrs = {{"Brown", 0.72}, {"MIT", 0.18}};
  std::string buf;
  SecondaryIndex::EncodePointers(ptrs, true, &buf);
  std::vector<SecondaryPointer> out;
  bool has_cutoff;
  ASSERT_TRUE(SecondaryIndex::DecodePointers(buf, &out, &has_cutoff).ok());
  EXPECT_TRUE(has_cutoff);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].attr, "Brown");
  EXPECT_NEAR(out[0].prob, 0.72, 1e-8);
  EXPECT_EQ(out[1].attr, "MIT");
}

TEST(SecondaryIndexTest, PointerLimitTruncatesAndFlags) {
  storage::DbEnv env;
  SecondaryIndex sec(&env, "s", 8192, /*max_pointers=*/2);
  std::vector<SecondaryPointer> ptrs = {
      {"A", 0.5}, {"B", 0.3}, {"C", 0.1}, {"D", 0.05}};
  ASSERT_TRUE(sec.Put("US", 0.9, 1, ptrs, false).ok());
  std::vector<SecondaryEntry> entries;
  ASSERT_TRUE(sec.Collect("US", 0.0, &entries).ok());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].pointers.size(), 2u);
  EXPECT_EQ(entries[0].pointers[0].attr, "A");
  EXPECT_TRUE(entries[0].has_cutoff);  // truncation is flagged
}


TEST(UpiTest, TopKSpansIntoCutoffIndex) {
  // k larger than the heap-resident entries for the value: the tail must be
  // served through the cutoff index, in descending-confidence order.
  storage::DbEnv env;
  UpiOptions opt = PaperOptions();
  opt.cutoff = 0.4;
  std::vector<Tuple> tuples;
  for (TupleId id = 1; id <= 6; ++id) {
    double strong = 0.55 + 0.05 * static_cast<double>(id);
    tuples.push_back(
        Tuple(id, 1.0,
              {Value::String("t" + std::to_string(id)),
               Value::Discrete(Dist({{"X", strong}, {"Y", 1.0 - strong}})),
               Value::Discrete(Dist({{"US", 1.0}}))}));
  }
  auto upi =
      Upi::Build(&env, "a", PaperSchema(), opt, {}, tuples).ValueOrDie();
  // Y-alternatives (prob 0.15..0.4) are all below C=0.4 -> cutoff.
  std::vector<PtqMatch> out;
  ASSERT_TRUE(upi->QueryTopK("Y", 4, &out).ok());
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].confidence, out[i].confidence);
  }
  EXPECT_EQ(out[0].id, 1u);  // weakest strong alt => strongest Y alt
}

TEST(UpiTest, DeleteThenPtqAndSecondaryQueries) {
  // The engine adapters route straight to these paths; a deleted tuple must
  // vanish from the heap scan, the cutoff index, AND both secondary access
  // modes in the same breath.
  storage::DbEnv env;
  Upi upi(&env, "a", PaperSchema(), PaperOptions());
  ASSERT_TRUE(upi.AddSecondaryColumn(2).ok());
  auto tuples = PaperTuples();
  for (const Tuple& t : tuples) ASSERT_TRUE(upi.Insert(t).ok());

  ASSERT_TRUE(upi.Delete(tuples[0]).ok());  // Alice (US 90%)
  std::vector<PtqMatch> out;
  ASSERT_TRUE(upi.QueryPtq("Brown", 0.01, &out).ok());
  ASSERT_EQ(out.size(), 1u);  // only Carol's Brown alternative remains
  EXPECT_EQ(out[0].id, 3u);

  for (auto mode : {SecondaryAccessMode::kFirstPointer,
                    SecondaryAccessMode::kTailored}) {
    out.clear();
    ASSERT_TRUE(upi.QueryBySecondary(2, "US", 0.1, mode, &out).ok());
    ASSERT_EQ(out.size(), 2u) << "mode " << static_cast<int>(mode);
    for (const auto& m : out) EXPECT_NE(m.id, 1u);
  }
  // The secondary histogram shrinks with the index, so planner estimates
  // stay honest after churn.
  EXPECT_NEAR(upi.EstimateSecondaryMatches(2, "US", 0.1), 2.0, 0.5);

  // Delete Bob too: his below-cutoff UCB pointer and US entry must go.
  ASSERT_TRUE(upi.Delete(tuples[1]).ok());
  out.clear();
  ASSERT_TRUE(upi.QueryPtq("UCB", 0.01, &out).ok());
  EXPECT_TRUE(out.empty());
  out.clear();
  ASSERT_TRUE(
      upi.QueryBySecondary(2, "US", 0.1, SecondaryAccessMode::kTailored, &out)
          .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 3u);
}

TEST(UpiTest, TopKFallsBackToCutoffWhenHeapHasFewerThanK) {
  // After deletes shrink the heap-resident entries below k, QueryTopK must
  // serve the tail through the cutoff index (Section 3.1's fallback).
  storage::DbEnv env;
  UpiOptions opt = PaperOptions();
  opt.cutoff = 0.45;  // every non-first Y alternative (0.15..0.40) -> cutoff
  std::vector<Tuple> tuples;
  for (TupleId id = 1; id <= 6; ++id) {
    double strong = 0.55 + 0.05 * static_cast<double>(id);
    tuples.push_back(
        Tuple(id, 1.0,
              {Value::String("t" + std::to_string(id)),
               Value::Discrete(Dist({{"X", strong}, {"Y", 1.0 - strong}})),
               Value::Discrete(Dist({{"US", 1.0}}))}));
  }
  // One tuple whose FIRST alternative is Y: a heap-resident Y entry that
  // deletion will remove.
  tuples.push_back(Tuple(7, 1.0,
                         {Value::String("t7"),
                          Value::Discrete(Dist({{"Y", 0.9}, {"X", 0.1}})),
                          Value::Discrete(Dist({{"US", 1.0}}))}));
  auto upi =
      Upi::Build(&env, "a", PaperSchema(), opt, {}, tuples).ValueOrDie();

  // With t7 present the heap holds one qualifying Y entry; ask for more.
  std::vector<PtqMatch> out;
  ASSERT_TRUE(upi->QueryTopK("Y", 3, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 7u);  // the heap entry leads
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].confidence, out[i].confidence);
  }

  // Delete t7: the heap now has ZERO qualifying Y entries, so top-k must be
  // served entirely from the cutoff index.
  ASSERT_TRUE(upi->Delete(tuples.back()).ok());
  out.clear();
  ASSERT_TRUE(upi->QueryTopK("Y", 3, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  for (const auto& m : out) EXPECT_NE(m.id, 7u);
  // Cutoff Y alternatives are 1 - strong: strongest first => id 1.
  EXPECT_EQ(out[0].id, 1u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].confidence, out[i].confidence);
  }
}

TEST(UpiTest, AddSecondaryColumnValidation) {
  storage::DbEnv env;
  Upi upi(&env, "a", PaperSchema(), PaperOptions());
  EXPECT_FALSE(upi.AddSecondaryColumn(-1).ok());
  EXPECT_FALSE(upi.AddSecondaryColumn(99).ok());
  EXPECT_FALSE(upi.AddSecondaryColumn(0).ok());  // Name is a plain string
  EXPECT_TRUE(upi.AddSecondaryColumn(2).ok());
  EXPECT_TRUE(upi.AddSecondaryColumn(2).IsAlreadyExists());
  EXPECT_EQ(upi.secondary(1), nullptr);
  EXPECT_NE(upi.secondary(2), nullptr);
}

TEST(UpiTest, InsertRejectsBadClusterColumn) {
  storage::DbEnv env;
  UpiOptions opt = PaperOptions();
  opt.cluster_column = 0;  // Name: not discrete
  Upi upi(&env, "a", PaperSchema(), opt);
  EXPECT_FALSE(upi.Insert(PaperTuples()[0]).ok());
}

TEST(UpiTest, EstimatePtqTracksTruthAfterInserts) {
  storage::DbEnv env;
  Upi upi(&env, "a", PaperSchema(), PaperOptions());
  for (const Tuple& t : PaperTuples()) ASSERT_TRUE(upi.Insert(t).ok());
  auto est = upi.EstimatePtq("MIT", 0.1);
  EXPECT_NEAR(est.heap_entries, 2.0, 0.75);  // Bob 0.95, Alice 0.18
  EXPECT_GT(est.selectivity, 0.0);
  // Deleting Bob shifts the estimate down.
  ASSERT_TRUE(upi.Delete(PaperTuples()[1]).ok());
  auto est2 = upi.EstimatePtq("MIT", 0.1);
  EXPECT_LT(est2.heap_entries, est.heap_entries);
}

TEST(UpiTest, SizeBytesCoversAllFiles) {
  storage::DbEnv env;
  auto upi = Upi::Build(&env, "a", PaperSchema(), PaperOptions(), {2},
                        PaperTuples())
                 .ValueOrDie();
  EXPECT_GE(upi->size_bytes(), upi->heap_tree()->size_bytes() +
                                   upi->cutoff_index()->size_bytes() +
                                   upi->secondary(2)->size_bytes());
}

}  // namespace
}  // namespace upi::core
