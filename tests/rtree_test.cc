#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "rtree/node_path.h"
#include "rtree/rect.h"
#include "rtree/rtree.h"
#include "storage/db_env.h"

namespace upi::rtree {
namespace {

TEST(RectTest, AreaUnionEnlargement) {
  Rect a{0, 0, 2, 2}, b{1, 1, 4, 3};
  EXPECT_DOUBLE_EQ(a.Area(), 4.0);
  Rect u = a.Union(b);
  EXPECT_TRUE(u == (Rect{0, 0, 4, 3}));
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 12.0 - 4.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 4.0);
}

TEST(RectTest, EmptyRectIdentity) {
  Rect e = Rect::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
  Rect a{1, 2, 3, 4};
  EXPECT_TRUE(e.Union(a) == a);
  EXPECT_TRUE(a.Union(e) == a);
  EXPECT_FALSE(e.Intersects(a));
}

TEST(RectTest, IntersectsAndContains) {
  Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.Intersects(Rect{5, 5, 15, 15}));
  EXPECT_FALSE(a.Intersects(Rect{11, 0, 12, 10}));
  EXPECT_TRUE(a.Contains(Rect{1, 1, 9, 9}));
  EXPECT_FALSE(a.Contains(Rect{1, 1, 11, 9}));
  EXPECT_TRUE(a.ContainsPoint({10, 10}));
  EXPECT_FALSE(a.ContainsPoint({10.1, 10}));
}

TEST(RectTest, MinMaxDist) {
  Rect a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(a.MinDist({5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(a.MinDist({13, 14}), 5.0);  // 3-4-5 triangle
  EXPECT_TRUE(a.IntersectsCircle({13, 14}, 5.0));
  EXPECT_FALSE(a.IntersectsCircle({13, 14}, 4.9));
  EXPECT_DOUBLE_EQ(a.MaxDist({0, 0}), std::sqrt(200.0));
}

TEST(RectTest, SerializeRoundTrip) {
  Rect a{-5.5, 0.25, 3.75, 1e6};
  std::string buf;
  a.Serialize(&buf);
  ASSERT_EQ(buf.size(), Rect::kSerializedSize);
  EXPECT_TRUE(Rect::Deserialize(buf.data()) == a);
}

TEST(NodeLocatorTest, InitialLabelsAscending) {
  NodeLocator loc;
  uint64_t prev = 0;
  for (int i = 0; i < 10; ++i) {
    uint64_t l = loc.AssignInitial(i, 10);
    EXPECT_GT(l, prev);
    prev = l;
  }
}

TEST(NodeLocatorTest, SplitLabelsLandBetween) {
  NodeLocator loc;
  uint64_t a = loc.AssignInitial(0, 3);
  uint64_t b = loc.AssignInitial(1, 3);
  uint64_t mid = loc.AssignAfter(a);
  EXPECT_GT(mid, a);
  EXPECT_LT(mid, b);
  // Splitting repeatedly keeps inserting between.
  uint64_t mid2 = loc.AssignAfter(a);
  EXPECT_GT(mid2, a);
  EXPECT_LT(mid2, mid);
  // Splitting the last label extends past it.
  uint64_t tail = loc.AssignAfter(b);
  EXPECT_GT(tail, b);
}

TEST(NodeLocatorTest, HeapKeyOrderFollowsLabels) {
  std::string k1 = EncodeLeafHeapKey(5, 100);
  std::string k2 = EncodeLeafHeapKey(5, 200);
  std::string k3 = EncodeLeafHeapKey(6, 1);
  EXPECT_LT(k1, k2);
  EXPECT_LT(k2, k3);
  uint64_t label;
  catalog::TupleId id;
  DecodeLeafHeapKey(k2, &label, &id);
  EXPECT_EQ(label, 5u);
  EXPECT_EQ(id, 200u);
}

// ---------------------------------------------------------------------------

struct Fx {
  storage::DbEnv env;
  storage::PageFile* file;
  NodeLocator locator;

  Fx() { file = env.CreateFile("rtree", 4096); }

  ObjectEntry MakeEntry(catalog::TupleId id, Point mean, double sigma = 5.0,
                        double bound = 15.0) {
    ObjectEntry e;
    e.id = id;
    e.mean = mean;
    e.sigma = sigma;
    e.bound = bound;
    e.mbr = Rect{mean.x - bound, mean.y - bound, mean.x + bound, mean.y + bound};
    return e;
  }
};

TEST(RTreeTest, InsertAndSearchSmall) {
  Fx fx;
  RTree tree(fx.env.MakePager(fx.file), RTreeOptions{4096, 0.9}, &fx.locator);
  auto no_move = [](catalog::TupleId, uint64_t, uint64_t) {
    return Status::OK();
  };
  uint64_t label;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tree.Insert(fx.MakeEntry(i, {i * 10.0, i * 10.0}), &label,
                            no_move)
                    .ok());
  }
  EXPECT_EQ(tree.num_entries(), 20u);
  ASSERT_TRUE(tree.ValidateInvariants().ok());
  std::set<catalog::TupleId> found;
  ASSERT_TRUE(tree.SearchCircle({50, 50}, 30, [&](const ObjectEntry& e,
                                                  uint64_t) {
    found.insert(e.id);
  }).ok());
  // Objects 4,5,6 are within 30 (+bound 15) of (50,50).
  EXPECT_TRUE(found.contains(5));
  EXPECT_FALSE(found.contains(15));
}

TEST(RTreeTest, SplitsReportMoves) {
  Fx fx;
  RTree tree(fx.env.MakePager(fx.file), RTreeOptions{4096, 0.9}, &fx.locator);
  std::map<catalog::TupleId, uint64_t> location;
  auto on_move = [&](catalog::TupleId id, uint64_t from, uint64_t to) {
    EXPECT_EQ(location[id], from);
    location[id] = to;
    return Status::OK();
  };
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    uint64_t label;
    Point p{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)};
    ASSERT_TRUE(tree.Insert(fx.MakeEntry(i, p), &label, on_move).ok());
    location[i] = label;
  }
  ASSERT_TRUE(tree.ValidateInvariants().ok())
      << tree.ValidateInvariants().ToString();
  EXPECT_GT(tree.height(), 1u);
  // Every entry's tracked label must match the leaf it is found in.
  std::map<catalog::TupleId, uint64_t> found;
  ASSERT_TRUE(tree.SearchRect(Rect{-100, -100, 1100, 1100},
                              [&](const ObjectEntry& e, uint64_t label) {
                                found[e.id] = label;
                              })
                  .ok());
  ASSERT_EQ(found.size(), 500u);
  for (const auto& [id, label] : found) {
    EXPECT_EQ(location[id], label) << "entry " << id;
  }
}

TEST(RTreeTest, BulkBuildValidAndSearchable) {
  Fx fx;
  std::vector<ObjectEntry> entries;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    entries.push_back(
        fx.MakeEntry(i, {rng.UniformDouble(0, 5000), rng.UniformDouble(0, 5000)}));
  }
  auto entries_copy = entries;
  std::vector<std::pair<uint64_t, catalog::TupleId>> placements;
  RTree tree = RTree::BulkBuild(
                   fx.env.MakePager(fx.file), RTreeOptions{4096, 0.9},
                   &fx.locator, std::move(entries),
                   [&](uint64_t label, const ObjectEntry& e) -> Status {
                     placements.push_back({label, e.id});
                     return Status::OK();
                   })
                   .ValueOrDie();
  EXPECT_EQ(tree.num_entries(), 3000u);
  EXPECT_EQ(placements.size(), 3000u);
  ASSERT_TRUE(tree.ValidateInvariants().ok())
      << tree.ValidateInvariants().ToString();
  // Exhaustive search returns exactly the input set.
  std::set<catalog::TupleId> found;
  ASSERT_TRUE(tree.SearchRect(Rect{-100, -100, 5100, 5100},
                              [&](const ObjectEntry& e, uint64_t) {
                                found.insert(e.id);
                              })
                  .ok());
  EXPECT_EQ(found.size(), 3000u);
  // Circle search agrees with a linear scan.
  Point qc{2500, 2500};
  double qr = 400;
  std::set<catalog::TupleId> via_tree, via_scan;
  ASSERT_TRUE(tree.SearchCircle(qc, qr, [&](const ObjectEntry& e, uint64_t) {
    via_tree.insert(e.id);
  }).ok());
  for (const auto& e : entries_copy) {
    if (e.mbr.IntersectsCircle(qc, qr)) via_scan.insert(e.id);
  }
  EXPECT_EQ(via_tree, via_scan);
}

TEST(RTreeTest, BulkBuildPlacementsSpatiallyCoherent) {
  // Neighboring labels should contain spatially close entries (the property
  // the continuous UPI's heap clustering relies on).
  Fx fx;
  std::vector<ObjectEntry> entries;
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    entries.push_back(
        fx.MakeEntry(i, {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)}));
  }
  std::map<uint64_t, std::vector<Point>> by_label;
  RTree tree = RTree::BulkBuild(
                   fx.env.MakePager(fx.file), RTreeOptions{4096, 0.9},
                   &fx.locator, std::move(entries),
                   [&](uint64_t label, const ObjectEntry& e) -> Status {
                     by_label[label].push_back(e.mean);
                     return Status::OK();
                   })
                   .ValueOrDie();
  (void)tree;
  // Mean intra-leaf spread must be far below the dataset diameter.
  double total_spread = 0;
  int leaves = 0;
  for (const auto& [label, pts] : by_label) {
    double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
    for (const auto& p : pts) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
    total_spread += (max_x - min_x) + (max_y - min_y);
    ++leaves;
  }
  EXPECT_LT(total_spread / leaves, 600.0);  // dataset spans 1000+1000
}

TEST(RTreeTest, ProbabilityBoundsBracketExact) {
  Fx fx;
  ObjectEntry e = fx.MakeEntry(1, {100, 100}, 10.0, 30.0);
  for (double dx : {0.0, 20.0, 50.0}) {
    for (double r : {10.0, 40.0, 80.0}) {
      Point c{100 + dx, 100};
      double lo = e.LowerBoundInCircle(c, r);
      double hi = e.UpperBoundInCircle(c, r);
      double p = e.ProbInCircle(c, r);
      EXPECT_LE(lo, p + 1e-9);
      EXPECT_GE(hi, p - 1e-9);
    }
  }
}

}  // namespace
}  // namespace upi::rtree
