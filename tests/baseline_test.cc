#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baseline/pii.h"
#include "baseline/unclustered_table.h"
#include "core/upi.h"
#include "datagen/dblp.h"
#include "storage/db_env.h"

namespace upi::baseline {
namespace {

using catalog::Tuple;
using catalog::TupleId;
using datagen::AuthorCols;

struct Fx {
  datagen::DblpConfig cfg;
  std::unique_ptr<datagen::DblpGenerator> gen;
  std::vector<Tuple> tuples;
  storage::DbEnv env;
  std::unique_ptr<UnclusteredTable> table;

  explicit Fx(uint64_t n = 800, uint64_t seed = 51) {
    cfg.num_authors = n;
    cfg.num_institutions = 60;
    cfg.seed = seed;
    gen = std::make_unique<datagen::DblpGenerator>(cfg);
    tuples = gen->GenerateAuthors();
    table = UnclusteredTable::Build(&env, "authors",
                                    datagen::DblpGenerator::AuthorSchema(),
                                    {AuthorCols::kInstitution}, tuples)
                .ValueOrDie();
    table->charge_open_per_query = false;
  }
};

TEST(PiiIndexTest, CollectOrderedByConfidence) {
  storage::DbEnv env;
  PiiIndex pii(&env, "pii", 8192);
  ASSERT_TRUE(pii.Put("MIT", 0.95, 2, {0, 0}).ok());
  ASSERT_TRUE(pii.Put("MIT", 0.18, 1, {0, 1}).ok());
  ASSERT_TRUE(pii.Put("UCB", 0.05, 2, {0, 0}).ok());
  std::vector<PiiIndex::Entry> out;
  ASSERT_TRUE(pii.Collect("MIT", 0.0, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key.id, 2u);
  EXPECT_NEAR(out[0].key.prob, 0.95, 1e-8);
  EXPECT_EQ(out[1].key.id, 1u);
  // Threshold stops early.
  out.clear();
  ASSERT_TRUE(pii.Collect("MIT", 0.5, &out).ok());
  EXPECT_EQ(out.size(), 1u);
  // Limit supports top-k.
  out.clear();
  ASSERT_TRUE(pii.Collect("MIT", 0.0, &out, 1).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(PiiIndexTest, RemoveDeletesEntry) {
  storage::DbEnv env;
  PiiIndex pii(&env, "pii", 8192);
  ASSERT_TRUE(pii.Put("X", 0.5, 1, {3, 4}).ok());
  ASSERT_TRUE(pii.Remove("X", 0.5, 1).ok());
  std::vector<PiiIndex::Entry> out;
  ASSERT_TRUE(pii.Collect("X", 0.0, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(pii.Remove("X", 0.5, 1).IsNotFound());
}

TEST(UnclusteredTableTest, QueryMatchesOracle) {
  Fx fx;
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::string value =
        fx.gen->InstitutionName(rng.Uniform(fx.cfg.num_institutions));
    double qt = rng.NextDouble() * 0.8 + 0.01;
    std::map<TupleId, double> oracle;
    for (const Tuple& t : fx.tuples) {
      double conf = t.ConfidenceOf(AuthorCols::kInstitution, value);
      if (conf >= qt && conf > 0) oracle[t.id()] = conf;
    }
    std::vector<core::PtqMatch> out;
    ASSERT_TRUE(
        fx.table->QueryPii(AuthorCols::kInstitution, value, qt, &out).ok());
    std::map<TupleId, double> got;
    for (const auto& m : out) got[m.id] = m.confidence;
    ASSERT_EQ(got.size(), oracle.size()) << value << " qt=" << qt;
    for (const auto& [id, conf] : oracle) {
      ASSERT_TRUE(got.contains(id));
      EXPECT_NEAR(got[id], conf, 1e-6);
    }
  }
}

TEST(UnclusteredTableTest, InsertDeleteMaintainsIndexes) {
  Fx fx(300);
  Tuple extra = fx.gen->MakeAuthor(90000);
  ASSERT_TRUE(fx.table->Insert(extra).ok());
  const std::string v =
      extra.Get(AuthorCols::kInstitution).discrete().First().value;
  std::vector<core::PtqMatch> out;
  ASSERT_TRUE(fx.table->QueryPii(AuthorCols::kInstitution, v, 0.01, &out).ok());
  bool found = false;
  for (const auto& m : out) found |= m.id == extra.id();
  EXPECT_TRUE(found);

  ASSERT_TRUE(fx.table->Delete(extra.id()).ok());
  out.clear();
  ASSERT_TRUE(fx.table->QueryPii(AuthorCols::kInstitution, v, 0.01, &out).ok());
  for (const auto& m : out) EXPECT_NE(m.id, extra.id());
  EXPECT_TRUE(fx.table->Delete(extra.id()).IsNotFound());
}

TEST(UnclusteredTableTest, TopKReadsOnlyKEntries) {
  Fx fx;
  std::string v = fx.gen->PopularInstitution();
  std::vector<core::PtqMatch> out;
  ASSERT_TRUE(fx.table->QueryTopK(AuthorCols::kInstitution, v, 5, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].confidence, out[i].confidence);
  }
}

TEST(UpiVsPiiIoTest, UpiUsesFarLessIoForNonSelectiveQuery) {
  // The Figure 4 effect in miniature, as an assertion. Open charges are
  // disabled on both sides so the comparison is pure I/O shape.
  Fx fx(10000, 77);
  storage::DbEnv env2;
  core::UpiOptions opt;
  opt.cluster_column = AuthorCols::kInstitution;
  opt.cutoff = 0.1;
  opt.charge_open_per_query = false;
  auto upi = core::Upi::Build(&env2, "authors_upi",
                              datagen::DblpGenerator::AuthorSchema(), opt, {},
                              fx.tuples)
                 .ValueOrDie();
  // A mid-popularity institution: matches are sparse relative to the heap,
  // so PII pays per-tuple seeks rather than saturating into a sweep.
  std::string v = fx.gen->InstitutionName(8);
  double qt = 0.2;

  fx.env.ColdCache();
  sim::StatsWindow w_pii(fx.env.disk());
  std::vector<core::PtqMatch> out_pii;
  ASSERT_TRUE(
      fx.table->QueryPii(AuthorCols::kInstitution, v, qt, &out_pii).ok());
  double pii_ms = w_pii.ElapsedMs();

  env2.ColdCache();
  sim::StatsWindow w_upi(env2.disk());
  std::vector<core::PtqMatch> out_upi;
  ASSERT_TRUE(upi->QueryPtq(v, qt, &out_upi).ok());
  double upi_ms = w_upi.ElapsedMs();

  ASSERT_GT(out_pii.size(), 50u) << "query should not be trivially selective";
  ASSERT_EQ(out_pii.size(), out_upi.size());
  EXPECT_LT(upi_ms * 3, pii_ms) << "UPI=" << upi_ms << " PII=" << pii_ms;
}

}  // namespace
}  // namespace upi::baseline
