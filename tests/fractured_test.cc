#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/cost_model.h"
#include "core/fractured_upi.h"
#include "datagen/dblp.h"
#include "storage/db_env.h"

namespace upi::core {
namespace {

using catalog::Tuple;
using catalog::TupleId;

struct Fx {
  datagen::DblpConfig cfg;
  std::unique_ptr<datagen::DblpGenerator> gen;
  std::vector<Tuple> tuples;
  storage::DbEnv env;
  std::unique_ptr<FracturedUpi> table;

  explicit Fx(uint64_t n = 600, uint64_t seed = 11) {
    cfg.num_authors = n;
    cfg.num_institutions = 50;
    cfg.seed = seed;
    gen = std::make_unique<datagen::DblpGenerator>(cfg);
    tuples = gen->GenerateAuthors();
    UpiOptions opt;
    opt.cluster_column = datagen::AuthorCols::kInstitution;
    opt.cutoff = 0.1;
    opt.charge_open_per_query = false;
    table = std::make_unique<FracturedUpi>(
        &env, "authors", datagen::DblpGenerator::AuthorSchema(), opt,
        std::vector<int>{datagen::AuthorCols::kCountry});
    EXPECT_TRUE(table->BuildMain(tuples).ok());
  }

  std::map<TupleId, double> Oracle(const std::string& value, double qt,
                                   int col = datagen::AuthorCols::kInstitution,
                                   const std::set<TupleId>& deleted = {},
                                   const std::vector<Tuple>& extra = {}) {
    std::map<TupleId, double> oracle;
    auto consider = [&](const Tuple& t) {
      if (deleted.contains(t.id())) return;
      double conf = t.ConfidenceOf(col, value);
      if (conf >= qt && conf > 0) oracle[t.id()] = conf;
    };
    for (const Tuple& t : tuples) consider(t);
    for (const Tuple& t : extra) consider(t);
    return oracle;
  }

  void ExpectQueryMatches(const std::string& value, double qt,
                          const std::map<TupleId, double>& oracle) {
    std::vector<PtqMatch> out;
    ASSERT_TRUE(table->QueryPtq(value, qt, &out).ok());
    std::map<TupleId, double> got;
    for (const auto& m : out) got[m.id] = m.confidence;
    ASSERT_EQ(got.size(), oracle.size()) << value << " qt=" << qt;
    for (const auto& [id, conf] : oracle) {
      ASSERT_TRUE(got.contains(id)) << id;
      EXPECT_NEAR(got[id], conf, 1e-6);
    }
  }
};

TEST(FracturedUpiTest, MainOnlyQueryMatchesOracle) {
  Fx fx;
  std::string v = fx.gen->PopularInstitution();
  fx.ExpectQueryMatches(v, 0.2, fx.Oracle(v, 0.2));
  fx.ExpectQueryMatches(v, 0.05, fx.Oracle(v, 0.05));  // through cutoff index
}

TEST(FracturedUpiTest, BufferedInsertsVisibleWithoutFlush) {
  Fx fx;
  Tuple extra = fx.gen->MakeAuthor(100000);
  ASSERT_TRUE(fx.table->Insert(extra).ok());
  EXPECT_EQ(fx.table->buffered_inserts(), 1u);
  const auto& dist =
      extra.Get(datagen::AuthorCols::kInstitution).discrete();
  std::string v = dist.First().value;
  fx.ExpectQueryMatches(v, 0.01, fx.Oracle(v, 0.01, 1, {}, {extra}));
}

TEST(FracturedUpiTest, FlushCreatesFractureAndPreservesResults) {
  Fx fx;
  std::vector<Tuple> extras;
  for (TupleId id = 100000; id < 100050; ++id) {
    extras.push_back(fx.gen->MakeAuthor(id));
    ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
  }
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  EXPECT_EQ(fx.table->buffered_inserts(), 0u);
  EXPECT_EQ(fx.table->num_fractures(), 2u);
  std::string v = fx.gen->PopularInstitution();
  fx.ExpectQueryMatches(v, 0.05, fx.Oracle(v, 0.05, 1, {}, extras));
}

TEST(FracturedUpiTest, DeleteHidesTuplesEverywhere) {
  Fx fx;
  std::string v = fx.gen->PopularInstitution();
  auto full = fx.Oracle(v, 0.05);
  ASSERT_GE(full.size(), 3u) << "need matches to delete";
  std::set<TupleId> victims;
  for (const auto& [id, conf] : full) {
    victims.insert(id);
    if (victims.size() == 2) break;
  }
  for (TupleId id : victims) ASSERT_TRUE(fx.table->Delete(id).ok());
  // Before flush (delete buffered) ...
  fx.ExpectQueryMatches(v, 0.05, fx.Oracle(v, 0.05, 1, victims));
  // ... and after flush (delete set persisted).
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  fx.ExpectQueryMatches(v, 0.05, fx.Oracle(v, 0.05, 1, victims));
}

TEST(FracturedUpiTest, DeleteOfBufferedInsertNeverReachesDisk) {
  Fx fx;
  Tuple extra = fx.gen->MakeAuthor(200000);
  ASSERT_TRUE(fx.table->Insert(extra).ok());
  ASSERT_TRUE(fx.table->Delete(extra.id()).ok());
  EXPECT_EQ(fx.table->buffered_inserts(), 0u);
  EXPECT_EQ(fx.table->buffered_deletes(), 0u);
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  EXPECT_EQ(fx.table->num_fractures(), 1u);  // nothing new was written
}

TEST(FracturedUpiTest, TupleIdReuseRejected) {
  Fx fx;
  Tuple extra = fx.gen->MakeAuthor(300000);
  ASSERT_TRUE(fx.table->Insert(extra).ok());
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  ASSERT_TRUE(fx.table->Delete(extra.id()).ok());
  EXPECT_FALSE(fx.table->Insert(extra).ok());
}

TEST(FracturedUpiTest, MergeCollapsesFracturesAndPreservesAnswers) {
  Fx fx;
  std::vector<Tuple> extras;
  std::set<TupleId> victims = {5, 17, 123};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 40; ++i) {
      TupleId id = 400000 + batch * 1000 + i;
      extras.push_back(fx.gen->MakeAuthor(id));
      ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
    }
    ASSERT_TRUE(fx.table->FlushBuffer().ok());
  }
  for (TupleId id : victims) ASSERT_TRUE(fx.table->Delete(id).ok());
  EXPECT_EQ(fx.table->num_fractures(), 4u);

  uint64_t live_before = fx.table->num_live_tuples();
  ASSERT_TRUE(fx.table->MergeAll().ok());
  EXPECT_EQ(fx.table->num_fractures(), 1u);
  EXPECT_EQ(fx.table->num_live_tuples(), live_before);

  std::string v = fx.gen->PopularInstitution();
  fx.ExpectQueryMatches(v, 0.05, fx.Oracle(v, 0.05, 1, victims, extras));
  fx.ExpectQueryMatches(v, 0.3, fx.Oracle(v, 0.3, 1, victims, extras));

  // Secondary survives the merge too.
  std::string country = fx.gen->MidCountry();
  std::vector<PtqMatch> out;
  ASSERT_TRUE(fx.table
                  ->QueryBySecondary(datagen::AuthorCols::kCountry, country,
                                     0.3, SecondaryAccessMode::kTailored, &out)
                  .ok());
  auto oracle =
      fx.Oracle(country, 0.3, datagen::AuthorCols::kCountry, victims, extras);
  std::map<TupleId, double> got;
  for (const auto& m : out) got[m.id] = m.confidence;
  ASSERT_EQ(got.size(), oracle.size());
  for (const auto& [id, conf] : oracle) {
    ASSERT_TRUE(got.contains(id));
    EXPECT_NEAR(got[id], conf, 1e-6);
  }
}

TEST(FracturedUpiTest, FlushIsSequentialInsertIsCheap) {
  // The Table 7 effect in miniature: buffering + sequential flush must be far
  // cheaper than random in-place UPI maintenance.
  Fx fx(2000, 3);

  // Non-fractured UPI: insert the same tuples in place.
  storage::DbEnv env2(4 << 20);  // small pool forces eviction writes
  UpiOptions opt = fx.table->options();
  Upi plain(&env2, "plain", datagen::DblpGenerator::AuthorSchema(), opt);
  auto base = fx.tuples;
  {
    auto built = Upi::Build(&env2, "plain_base",
                            datagen::DblpGenerator::AuthorSchema(), opt, {},
                            base);
    ASSERT_TRUE(built.ok());
  }

  std::vector<Tuple> extras;
  for (TupleId id = 500000; id < 500200; ++id) {
    extras.push_back(fx.gen->MakeAuthor(id));
  }

  sim::StatsWindow w_frac(fx.env.disk());
  for (const Tuple& t : extras) ASSERT_TRUE(fx.table->Insert(t).ok());
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  double frac_ms = w_frac.ElapsedMs();

  // Plain UPI gets a comparable starting size by building then inserting.
  sim::StatsWindow w_plain(env2.disk());
  storage::DbEnv env3(4 << 20);
  auto plain_full =
      Upi::Build(&env3, "p", datagen::DblpGenerator::AuthorSchema(), opt, {},
                 base)
          .ValueOrDie();
  env3.ColdCache();
  sim::StatsWindow w3(env3.disk());
  for (const Tuple& t : extras) ASSERT_TRUE(plain_full->Insert(t).ok());
  env3.pool()->FlushAll();
  double plain_ms = w3.ElapsedMs();

  EXPECT_LT(frac_ms, plain_ms / 3) << "fractured flush should be much cheaper";
}

TEST(FracturedUpiTest, SizeAndStatsAccounting) {
  Fx fx;
  uint64_t size0 = fx.table->size_bytes();
  EXPECT_GT(size0, 0u);
  for (TupleId id = 600000; id < 600100; ++id) {
    ASSERT_TRUE(fx.table->Insert(fx.gen->MakeAuthor(id)).ok());
  }
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  EXPECT_GT(fx.table->size_bytes(), size0);
  TableStats stats = TableStats::Of(*fx.table);
  EXPECT_EQ(stats.num_fractures, 2u);
  EXPECT_GT(stats.num_leaf_pages, 0u);
  EXPECT_GE(stats.btree_height, 1u);
}


TEST(FracturedUpiTest, PartialMergeCollapsesOldestDeltas) {
  Fx fx;
  std::vector<Tuple> extras;
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 30; ++i) {
      TupleId id = 700000 + batch * 1000 + i;
      extras.push_back(fx.gen->MakeAuthor(id));
      ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
    }
    ASSERT_TRUE(fx.table->FlushBuffer().ok());
  }
  // Delete a tuple that lives in the first delta fracture.
  TupleId victim = 700000;
  ASSERT_TRUE(fx.table->Delete(victim).ok());
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  ASSERT_EQ(fx.table->num_fractures(), 5u);  // main + 4 deltas

  uint64_t live_before = fx.table->num_live_tuples();
  ASSERT_TRUE(fx.table->MergeOldestFractures(3).ok());
  EXPECT_EQ(fx.table->num_fractures(), 3u);  // main + merged + newest delta
  EXPECT_EQ(fx.table->num_live_tuples(), live_before);

  std::string v = fx.gen->PopularInstitution();
  std::vector<Tuple> live_extras;
  for (const auto& t : extras) {
    if (t.id() != victim) live_extras.push_back(t);
  }
  fx.ExpectQueryMatches(v, 0.05, fx.Oracle(v, 0.05, 1, {victim}, live_extras));

  // The victim was retired from the delete set by the partial merge; a later
  // full merge must still be correct.
  ASSERT_TRUE(fx.table->MergeAll().ok());
  EXPECT_EQ(fx.table->num_fractures(), 1u);
  fx.ExpectQueryMatches(v, 0.05, fx.Oracle(v, 0.05, 1, {victim}, live_extras));
}

TEST(FracturedUpiTest, PartialMergeNoOpWithFewDeltas) {
  Fx fx;
  ASSERT_TRUE(fx.table->Insert(fx.gen->MakeAuthor(800000)).ok());
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  ASSERT_TRUE(fx.table->MergeOldestFractures(5).ok());  // only 1 delta
  EXPECT_EQ(fx.table->num_fractures(), 2u);
}

TEST(FracturedUpiTest, ScanTuplesDedupsAndSubtractsDeleteSetsAcrossFractures) {
  // The coverage gap: a tuple's life across three fractures — inserted and
  // flushed (fracture A), deleted with the delete set flushed alongside a
  // second batch (fracture B), then a third batch flushed (fracture C) while
  // another delete is still RAM-buffered. ScanTuples must emit every live
  // tuple exactly once (the heap duplicates multi-alternative tuples within
  // a fracture) and never a deleted one, whether its delete set is on disk
  // or still buffered. TupleIds never resurrect, so "re-inserting" the
  // deleted id into fracture C must be rejected rather than re-emitted.
  Fx fx;
  std::vector<Tuple> extras;
  // Fracture A.
  for (TupleId id = 910000; id < 910040; ++id) {
    extras.push_back(fx.gen->MakeAuthor(id));
    ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
  }
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  // Delete one fracture-A tuple and one main-fracture tuple; their delete
  // set is persisted with fracture B's flush.
  const TupleId victim_a = 910007, victim_main = 42;
  ASSERT_TRUE(fx.table->Delete(victim_a).ok());
  ASSERT_TRUE(fx.table->Delete(victim_main).ok());
  for (TupleId id = 920000; id < 920040; ++id) {
    extras.push_back(fx.gen->MakeAuthor(id));
    ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
  }
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  // The deleted id cannot be re-flushed into fracture C: reuse is rejected.
  EXPECT_FALSE(fx.table->Insert(fx.gen->MakeAuthor(victim_a)).ok());
  // Fracture C, plus a delete that stays RAM-buffered (no flush after).
  for (TupleId id = 930000; id < 930040; ++id) {
    extras.push_back(fx.gen->MakeAuthor(id));
    ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
  }
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  ASSERT_EQ(fx.table->num_fractures(), 4u);  // main + A + B + C
  const TupleId victim_buffered = 920011;
  ASSERT_TRUE(fx.table->Delete(victim_buffered).ok());
  ASSERT_EQ(fx.table->buffered_deletes(), 1u);

  std::set<TupleId> deleted = {victim_a, victim_main, victim_buffered};
  std::map<TupleId, int> seen;
  ASSERT_TRUE(
      fx.table->ScanTuples([&](const Tuple& t) { ++seen[t.id()]; }).ok());
  for (const auto& [id, count] : seen) {
    EXPECT_EQ(count, 1) << "tuple " << id << " emitted more than once";
    EXPECT_FALSE(deleted.contains(id)) << "deleted tuple " << id << " emitted";
  }
  // Exactly the live population: base + extras - the three victims.
  EXPECT_EQ(seen.size(), fx.tuples.size() + extras.size() - deleted.size());
  for (const Tuple& t : extras) {
    if (!deleted.contains(t.id())) {
      EXPECT_TRUE(seen.contains(t.id())) << "live tuple " << t.id() << " missing";
    }
  }
}

TEST(FracturedUpiTest, AdaptiveTuningRetunesPerFracture) {
  Fx fx;
  double main_cutoff = fx.table->main()->options().cutoff;
  // A workload that only ever queries at QT=0.5 tolerates a large cutoff;
  // the advisor should raise C for the next fracture.
  fx.table->EnableAdaptiveTuning(
      {{fx.gen->PopularInstitution(), 0.5, 1.0}}, 1e18);
  for (TupleId id = 900000; id < 900200; ++id) {
    ASSERT_TRUE(fx.table->Insert(fx.gen->MakeAuthor(id)).ok());
  }
  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  ASSERT_EQ(fx.table->fractures().size(), 1u);
  double frac_cutoff = fx.table->fractures()[0]->options().cutoff;
  EXPECT_GT(frac_cutoff, main_cutoff);
  EXPECT_NEAR(fx.table->main()->options().cutoff, main_cutoff, 1e-12)
      << "existing fractures keep their own parameters";

  // Queries across mixed-parameter fractures still match the oracle.
  std::string v = fx.gen->PopularInstitution();
  std::vector<Tuple> extras;
  // (regenerate the same tuples for the oracle via a fresh generator)
  datagen::DblpGenerator gen2(fx.cfg);
  auto base = gen2.GenerateAuthors();
  (void)base;
  std::vector<PtqMatch> out;
  ASSERT_TRUE(fx.table->QueryPtq(v, 0.02, &out).ok());
  EXPECT_GE(out.size(), fx.Oracle(v, 0.02).size());
}

}  // namespace
}  // namespace upi::core
