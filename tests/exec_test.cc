#include <gtest/gtest.h>

#include <map>

#include "baseline/unclustered_table.h"
#include "core/continuous_upi.h"
#include "core/upi.h"
#include "datagen/cartel.h"
#include "datagen/dblp.h"
#include "engine/access_path.h"
#include "exec/aggregate.h"
#include "exec/operators.h"
#include "exec/ptq.h"
#include "exec/spatial.h"
#include "exec/topk.h"
#include "storage/db_env.h"

namespace upi::exec {
namespace {

using catalog::Tuple;
using catalog::TupleId;
using datagen::AuthorCols;
using datagen::PublicationCols;

struct DblpFx {
  datagen::DblpConfig cfg;
  std::unique_ptr<datagen::DblpGenerator> gen;
  std::vector<Tuple> authors;
  std::vector<Tuple> pubs;
  storage::DbEnv env;
  std::unique_ptr<core::Upi> author_upi;
  std::unique_ptr<core::Upi> pub_upi;

  DblpFx() {
    cfg.num_authors = 600;
    cfg.num_publications = 1200;
    cfg.num_institutions = 50;
    cfg.seed = 61;
    gen = std::make_unique<datagen::DblpGenerator>(cfg);
    authors = gen->GenerateAuthors();
    pubs = gen->GeneratePublications(authors);
    core::UpiOptions opt;
    opt.cluster_column = AuthorCols::kInstitution;
    opt.cutoff = 0.1;
    opt.charge_open_per_query = false;
    author_upi = core::Upi::Build(&env, "authors",
                                  datagen::DblpGenerator::AuthorSchema(), opt,
                                  {}, authors)
                     .ValueOrDie();
    core::UpiOptions popt = opt;
    popt.cluster_column = PublicationCols::kInstitution;
    pub_upi = core::Upi::Build(&env, "pubs",
                               datagen::DblpGenerator::PublicationSchema(),
                               popt, {PublicationCols::kCountry}, pubs)
                  .ValueOrDie();
  }
};

TEST(AggregateTest, Query2GroupByJournal) {
  DblpFx fx;
  std::string v = fx.gen->PopularInstitution();
  double qt = 0.15;
  std::vector<core::PtqMatch> matches;
  ASSERT_TRUE(fx.pub_upi->QueryPtq(v, qt, &matches).ok());
  auto groups = GroupByCount(matches, PublicationCols::kJournal);

  // Oracle.
  std::map<std::string, uint64_t> oracle;
  for (const Tuple& t : fx.pubs) {
    double conf = t.ConfidenceOf(PublicationCols::kInstitution, v);
    if (conf >= qt) ++oracle[t.Get(PublicationCols::kJournal).str()];
  }
  ASSERT_EQ(groups.size(), oracle.size());
  for (const auto& [journal, gc] : groups) {
    EXPECT_EQ(gc.count, oracle[journal]) << journal;
    EXPECT_LE(gc.expected_count, gc.count + 1e-9);
    EXPECT_GT(gc.expected_count, 0.0);
  }
}

TEST(PtqUtilTest, SortFilterSummarize) {
  std::vector<core::PtqMatch> ms(3);
  ms[0].id = 1;
  ms[0].confidence = 0.2;
  ms[1].id = 2;
  ms[1].confidence = 0.9;
  ms[2].id = 3;
  ms[2].confidence = 0.5;
  SortByConfidenceDesc(&ms);
  EXPECT_EQ(ms[0].id, 2u);
  EXPECT_EQ(ms[2].id, 1u);
  FilterByThreshold(&ms, 0.4);
  EXPECT_EQ(ms.size(), 2u);
  EXPECT_NE(Summarize(ms).find("2 tuples"), std::string::npos);
  ms.clear();
  EXPECT_EQ(Summarize(ms), "0 tuples");
}

TEST(TopKTest, StrategiesAgree) {
  DblpFx fx;
  engine::UpiAccessPath path(fx.author_upi.get());
  std::string v = fx.gen->PopularInstitution();
  const size_t k = 10;

  std::vector<core::PtqMatch> direct;
  ASSERT_TRUE(TopKDirect(path, v, k, &direct).ok());
  ASSERT_EQ(direct.size(), k);
  for (size_t i = 1; i < direct.size(); ++i) {
    EXPECT_GE(direct[i - 1].confidence, direct[i].confidence);
  }

  std::vector<core::PtqMatch> iter;
  int rounds = 0;
  ASSERT_TRUE(TopKByDecreasingThreshold(path, v, k, 0.5, &iter, &rounds).ok());
  ASSERT_EQ(iter.size(), k);
  EXPECT_GE(rounds, 1);

  std::vector<core::PtqMatch> est;
  ASSERT_TRUE(TopKByEstimatedThreshold(path, v, k, &est).ok());
  ASSERT_EQ(est.size(), k);

  // All strategies must return the same confidence profile (ids may tie).
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(direct[i].confidence, iter[i].confidence, 1e-8);
    EXPECT_NEAR(direct[i].confidence, est[i].confidence, 1e-8);
  }
}

TEST(TopKTest, UnclusteredBaselineAgrees) {
  DblpFx fx;
  auto table = baseline::UnclusteredTable::Build(
                   &fx.env, "authors_heap",
                   datagen::DblpGenerator::AuthorSchema(),
                   {AuthorCols::kInstitution}, fx.authors)
                   .ValueOrDie();
  table->charge_open_per_query = false;
  std::string v = fx.gen->PopularInstitution();
  engine::UpiAccessPath upi_path(fx.author_upi.get());
  engine::UnclusteredAccessPath heap_path(table.get(), AuthorCols::kInstitution);
  std::vector<core::PtqMatch> via_upi, via_heap;
  ASSERT_TRUE(TopKDirect(upi_path, v, 7, &via_upi).ok());
  ASSERT_TRUE(TopKDirect(heap_path, v, 7, &via_heap).ok());
  ASSERT_EQ(via_upi.size(), via_heap.size());
  for (size_t i = 0; i < via_upi.size(); ++i) {
    EXPECT_NEAR(via_upi[i].confidence, via_heap[i].confidence, 1e-8);
  }
}

TEST(SpatialTest, KnnExpandsUntilKFound) {
  datagen::CartelConfig cfg;
  cfg.num_observations = 1500;
  cfg.area_size = 4000;
  cfg.grid_roads = 8;
  cfg.seed = 71;
  datagen::CartelGenerator gen(cfg);
  auto obs = gen.GenerateObservations();
  storage::DbEnv env;
  core::ContinuousUpiOptions opt;
  opt.charge_open_per_query = false;
  auto upi = core::ContinuousUpi::Build(
                 &env, "cars", datagen::CartelGenerator::CarObservationSchema(),
                 opt, {}, obs)
                 .ValueOrDie();
  Rng rng(5);
  prob::Point c = gen.RandomQueryCenter(&rng);
  std::vector<core::PtqMatch> out;
  int rounds = 0;
  ASSERT_TRUE(KnnByExpandingRange(*upi, c, 12, 0.5, 50.0, &out, &rounds).ok());
  ASSERT_EQ(out.size(), 12u);
  EXPECT_GE(rounds, 1);
  // Results sorted by mean distance.
  double prev = -1;
  for (const auto& m : out) {
    double d = prob::DistanceBetween(
        m.tuple.Get(datagen::CarObsCols::kLocation).gaussian().mean(), c);
    EXPECT_GE(d, prev);
    prev = d;
  }
}


TEST(TopKTest, KLargerThanMatchesReturnsAll) {
  DblpFx fx;
  engine::UpiAccessPath path(fx.author_upi.get());
  std::string v = fx.gen->InstitutionName(40);  // unpopular
  std::vector<core::PtqMatch> out;
  ASSERT_TRUE(TopKDirect(path, v, 100000, &out).ok());
  // Oracle: all tuples with any positive confidence on v.
  size_t expected = 0;
  for (const Tuple& t : fx.authors) {
    if (t.ConfidenceOf(AuthorCols::kInstitution, v) > 0) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(TopKTest, DecreasingThresholdUsesFewRoundsForPopularValue) {
  DblpFx fx;
  engine::UpiAccessPath path(fx.author_upi.get());
  std::vector<core::PtqMatch> out;
  int rounds = 0;
  ASSERT_TRUE(TopKByDecreasingThreshold(path, fx.gen->PopularInstitution(), 3,
                                        0.5, &out, &rounds)
                  .ok());
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(rounds, 1);  // plenty of matches at QT=0.5 already
}

TEST(RunBatchTest, GroupsSameValueProbesAndMatchesIndividualResults) {
  DblpFx fx;
  engine::UpiAccessPath path(fx.author_upi.get());
  std::string v = fx.gen->PopularInstitution();
  std::vector<ProbeSpec> probes = {
      {-1, v, 0.6}, {-1, v, 0.3}, {-1, fx.gen->InstitutionName(12), 0.4},
      {-1, v, 0.3},  // exact duplicate of probe 1
  };
  std::vector<std::vector<core::PtqMatch>> batched;
  ASSERT_TRUE(RunBatch(path, probes, &batched).ok());
  ASSERT_EQ(batched.size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    std::vector<core::PtqMatch> solo;
    ASSERT_TRUE(path.QueryPtq(probes[i].value, probes[i].qt, &solo).ok());
    SortByConfidenceDesc(&solo);
    ASSERT_EQ(batched[i].size(), solo.size()) << "probe " << i;
    for (size_t j = 0; j < solo.size(); ++j) {
      EXPECT_EQ(batched[i][j].id, solo[j].id);
      EXPECT_NEAR(batched[i][j].confidence, solo[j].confidence, 1e-12);
    }
  }
}

TEST(AggregateTest, ExpectedCountBelowThresholdCount) {
  DblpFx fx;
  std::vector<core::PtqMatch> matches;
  ASSERT_TRUE(fx.pub_upi->QueryPtq(fx.gen->PopularInstitution(), 0.1, &matches).ok());
  auto groups = GroupByCount(matches, PublicationCols::kJournal);
  ASSERT_FALSE(groups.empty());
  for (const auto& [j, gc] : groups) {
    EXPECT_GT(gc.expected_count, 0.0);
    EXPECT_LE(gc.expected_count, static_cast<double>(gc.count) + 1e-9);
  }
}

}  // namespace
}  // namespace upi::exec
