#include <gtest/gtest.h>

#include "datagen/dblp.h"
#include "histogram/prob_histogram.h"
#include "histogram/selectivity.h"

namespace upi::histogram {
namespace {

TEST(ProbHistogramTest, ExactCountsOnBucketBoundaries) {
  ProbHistogram h(10);  // buckets of width 0.1
  h.Add("MIT", 0.95, true);
  h.Add("MIT", 0.55, false);
  h.Add("MIT", 0.15, false);
  h.Add("UCB", 0.05, false);
  EXPECT_EQ(h.total_alternatives(), 4u);
  EXPECT_EQ(h.total_first(), 1u);
  EXPECT_EQ(h.distinct_values(), 2u);
  EXPECT_NEAR(h.CountFirst("MIT", 0.9, 1.01), 1.0, 1e-9);
  EXPECT_NEAR(h.CountRest("MIT", 0.1, 0.2), 1.0, 1e-9);
  EXPECT_NEAR(h.CountRest("MIT", 0.0, 1.01), 2.0, 1e-9);
  EXPECT_NEAR(h.CountRest("UCB", 0.0, 0.1), 1.0, 1e-9);
  EXPECT_NEAR(h.CountFirst("none", 0.0, 1.01), 0.0, 1e-9);
}

TEST(ProbHistogramTest, InterpolatesWithinBucket) {
  ProbHistogram h(10);
  for (int i = 0; i < 100; ++i) h.Add("X", 0.55, false);  // bucket [0.5, 0.6)
  EXPECT_NEAR(h.CountRest("X", 0.5, 0.55), 50.0, 1e-6);
  EXPECT_NEAR(h.CountRest("X", 0.55, 0.6), 50.0, 1e-6);
}

TEST(ProbHistogramTest, RemoveUndoesAdd) {
  ProbHistogram h(20);
  h.Add("A", 0.42, true);
  h.Add("A", 0.42, true);
  h.Remove("A", 0.42, true);
  EXPECT_NEAR(h.CountFirst("A", 0.4, 0.45), 1.0, 1e-9);
  EXPECT_EQ(h.total_alternatives(), 1u);
  EXPECT_EQ(h.total_first(), 1u);
}

TEST(ProbHistogramTest, HeapHitsSplitAtCutoff) {
  ProbHistogram h(20);
  // One tuple: first alt 0.85, others 0.30 and 0.05 — all on value "v".
  h.Add("v", 0.85, true);
  h.Add("v", 0.30, false);
  h.Add("v", 0.05, false);
  // qt=0.02, C=0.1: heap holds first (0.85) + the 0.30 entry; cutoff holds
  // the 0.05 alternative.
  EXPECT_NEAR(h.EstimateHeapHits("v", 0.02, 0.1), 2.0, 1e-6);
  EXPECT_NEAR(h.EstimateCutoffPointers("v", 0.02, 0.1), 1.0, 1e-6);
  // qt=0.2 >= C: no cutoff pointers, heap hits are entries >= 0.2.
  EXPECT_NEAR(h.EstimateCutoffPointers("v", 0.2, 0.1), 0.0, 1e-9);
  EXPECT_NEAR(h.EstimateHeapHits("v", 0.2, 0.1), 2.0, 1e-6);
  // A first alternative below C still counts as a heap hit.
  ProbHistogram h2(20);
  h2.Add("w", 0.08, true);
  EXPECT_NEAR(h2.EstimateHeapHits("w", 0.02, 0.3), 1.0, 1e-6);
  EXPECT_NEAR(h2.EstimateCutoffPointers("w", 0.02, 0.3), 0.0, 1e-9);
}

TEST(ProbHistogramTest, TotalHeapEntriesShrinkWithCutoff) {
  ProbHistogram h(20);
  // 10 tuples, each with one strong and three weak alternatives.
  for (int i = 0; i < 10; ++i) {
    h.Add("v", 0.85, true);
    h.Add("v", 0.06, false);
    h.Add("v", 0.05, false);
    h.Add("v", 0.04, false);
  }
  EXPECT_NEAR(h.EstimateTotalHeapEntries(0.0), 40.0, 1e-9);
  EXPECT_NEAR(h.EstimateTotalHeapEntries(0.1), 10.0, 1e-6);
  EXPECT_NEAR(h.EstimateTotalHeapEntries(0.05), 10.0 + 20.0, 2.0);
}

TEST(SelectivityEstimatorTest, CutoffPointerEstimateTracksTruth) {
  // The Figure 11 property: estimated #cutoff-pointers ~= truth.
  datagen::DblpConfig cfg;
  cfg.num_authors = 5000;
  cfg.num_institutions = 100;
  cfg.seed = 21;
  datagen::DblpGenerator gen(cfg);
  auto tuples = gen.GenerateAuthors();

  ProbHistogram hist(20);
  for (const auto& t : tuples) {
    const auto& dist = t.Get(datagen::AuthorCols::kInstitution).discrete();
    bool first = true;
    for (const auto& a : dist.alternatives()) {
      hist.Add(a.value, t.existence() * a.prob, first);
      first = false;
    }
  }
  SelectivityEstimator est(&hist);
  std::string value = gen.PopularInstitution();

  for (double qt : {0.05, 0.15, 0.25}) {
    for (double c : {0.3, 0.5}) {
      // Ground truth: alternatives with qt <= conf < c, not first-of-tuple.
      double truth = 0;
      for (const auto& t : tuples) {
        const auto& dist = t.Get(datagen::AuthorCols::kInstitution).discrete();
        bool first = true;
        for (const auto& a : dist.alternatives()) {
          double conf = t.existence() * a.prob;
          if (!first && a.value == value && conf >= qt && conf < c) ++truth;
          first = false;
        }
      }
      double estimated = est.EstimatePtq(value, qt, c).cutoff_pointers;
      EXPECT_NEAR(estimated, truth, truth * 0.15 + 20)
          << "qt=" << qt << " C=" << c;
    }
  }
}

TEST(SelectivityEstimatorTest, HeapHitEstimateTracksTruth) {
  datagen::DblpConfig cfg;
  cfg.num_authors = 5000;
  cfg.num_institutions = 100;
  cfg.seed = 22;
  datagen::DblpGenerator gen(cfg);
  auto tuples = gen.GenerateAuthors();
  ProbHistogram hist(20);
  for (const auto& t : tuples) {
    const auto& dist = t.Get(datagen::AuthorCols::kInstitution).discrete();
    bool first = true;
    for (const auto& a : dist.alternatives()) {
      hist.Add(a.value, t.existence() * a.prob, first);
      first = false;
    }
  }
  SelectivityEstimator est(&hist);
  std::string value = gen.PopularInstitution();
  double c = 0.1;
  for (double qt : {0.05, 0.2, 0.5}) {
    double truth = 0;
    for (const auto& t : tuples) {
      const auto& dist = t.Get(datagen::AuthorCols::kInstitution).discrete();
      bool first = true;
      for (const auto& a : dist.alternatives()) {
        double conf = t.existence() * a.prob;
        bool in_heap = first || conf >= c;
        if (in_heap && a.value == value && conf >= qt) ++truth;
        first = false;
      }
    }
    double estimated = est.EstimatePtq(value, qt, c).heap_entries;
    EXPECT_NEAR(estimated, truth, truth * 0.15 + 20) << "qt=" << qt;
  }
}

TEST(SelectivityEstimatorTest, SelectivityBetweenZeroAndOne) {
  ProbHistogram h(20);
  for (int i = 0; i < 100; ++i) {
    h.Add("big", 0.9, true);
    h.Add("small", 0.02, false);
  }
  SelectivityEstimator est(&h);
  auto e = est.EstimatePtq("big", 0.5, 0.1);
  EXPECT_GT(e.selectivity, 0.0);
  EXPECT_LE(e.selectivity, 1.0);
  EXPECT_NEAR(e.heap_entries, 100.0, 1e-6);
  EXPECT_EQ(e.cutoff_pointers, 0.0);  // qt >= C
}

}  // namespace
}  // namespace upi::histogram
