// Tests for scatter-gather merge execution (exec/gather.h + the partitioned
// read path): MergedRunsCursor global ordering, GlobalTopKBound semantics,
// the top-k global-bound early exit pinning strictly fewer simulated pages
// than draining every shard (with bit-identical results), and partitioned
// PTQ / secondary / top-k results being bit-identical to the same data in an
// unpartitioned table — with shard pruning on and off.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "catalog/tuple.h"
#include "datagen/dblp.h"
#include "engine/database.h"
#include "exec/gather.h"
#include "exec/operators.h"
#include "prob/confidence.h"
#include "sim/sim_disk.h"

namespace upi::exec {
namespace {

using catalog::Schema;
using catalog::Tuple;
using catalog::Value;
using catalog::ValueType;
using datagen::AuthorCols;
using engine::Database;
using engine::DatabaseOptions;
using engine::PartitionOptions;
using engine::Partitioner;
using engine::PartitionedTable;
using engine::Query;
using engine::Table;
using prob::Alternative;
using prob::DiscreteDistribution;

DiscreteDistribution Dist(std::vector<Alternative> alts) {
  return DiscreteDistribution::Make(std::move(alts)).ValueOrDie();
}

core::PtqMatch Match(catalog::TupleId id, double confidence) {
  core::PtqMatch m;
  m.id = id;
  m.confidence = confidence;
  return m;
}

// ---------------------------------------------------------------------------
// Merge primitives
// ---------------------------------------------------------------------------

TEST(GatherTest, MergedRunsCursorInterleavesGlobally) {
  std::vector<std::vector<core::PtqMatch>> runs;
  runs.push_back({Match(1, 0.9), Match(4, 0.5), Match(5, 0.1)});
  runs.push_back({Match(2, 0.8), Match(3, 0.5)});  // 0.5 tie: id 3 before 4
  runs.push_back({});
  MergedRunsCursor cursor(std::move(runs));
  std::vector<core::PtqMatch> out;
  core::PtqMatch m;
  while (cursor.TakeNext(&m)) out.push_back(m);
  ASSERT_TRUE(cursor.status().ok());
  ASSERT_EQ(out.size(), 5u);
  const catalog::TupleId want[] = {1, 2, 3, 4, 5};
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].id, want[i]);
}

TEST(GatherTest, MergedRunsCursorCarriesScatterFailure) {
  MergedRunsCursor cursor({{Match(1, 0.9)}}, Status::IOError("shard 2 died"));
  core::PtqMatch m;
  EXPECT_FALSE(cursor.TakeNext(&m));
  EXPECT_EQ(cursor.status().code(), StatusCode::kIOError);
}

TEST(GatherTest, GlobalTopKBoundAdmitsUntilSaturatedThenRejectsStrictlyBelow) {
  GlobalTopKBound bound(3);
  EXPECT_TRUE(bound.Offer(0.9));
  EXPECT_TRUE(bound.Offer(0.2));  // heap not full yet: everything admitted
  EXPECT_TRUE(bound.Offer(0.5));
  EXPECT_EQ(bound.Kth(), 0.2);
  EXPECT_FALSE(bound.Offer(0.1));  // strictly below the 3rd-best
  EXPECT_TRUE(bound.Offer(0.2));   // tie with the k-th: admitted
  EXPECT_TRUE(bound.Offer(0.8));   // raises the bound
  EXPECT_EQ(bound.Kth(), 0.5);
  EXPECT_FALSE(bound.Offer(0.2));  // the old k-th no longer clears it
}

// ---------------------------------------------------------------------------
// Top-k early exit: strictly fewer pages than drain-all, identical rows
// ---------------------------------------------------------------------------

/// Finds a key with the given prefix that hash-routes to `shard` of `n`.
std::string KeyOnShard(const std::string& prefix, size_t shard, size_t n) {
  for (int i = 0;; ++i) {
    std::string key = prefix + std::to_string(i);
    if (Partitioner::HashKey(key) % n == shard) return key;
  }
}

struct TopKFixture {
  static constexpr size_t kShards = 4;
  static constexpr size_t kK = 5;
  std::string hot;
  std::vector<Tuple> tuples;

  TopKFixture() {
    // The hot value lives on shard 0, which a serial scatter probes first —
    // so the global bound is saturated at 0.95 before any other shard runs.
    hot = KeyOnShard("hot", 0, kShards);
    catalog::TupleId id = 1;
    for (size_t i = 0; i < kK; ++i) {
      tuples.push_back(Tuple(id++, 1.0,
                             {Value::String("owner"),
                              Value::Discrete(Dist({{hot, 0.95},
                                                    {"zz-alt", 0.05}}))}));
    }
    // Every other shard: one heap entry for the hot value at 0.45 (the row
    // the bound rejects immediately) plus six below-cutoff alternatives,
    // whose cutoff-index pointers only a drain-all pays to dereference.
    for (size_t shard = 1; shard < kShards; ++shard) {
      std::string filler = KeyOnShard("f" + std::to_string(shard), shard,
                                      kShards);
      tuples.push_back(Tuple(id++, 1.0,
                             {Value::String("mid"),
                              Value::Discrete(Dist({{filler, 0.55},
                                                    {hot, 0.45}}))}));
      for (int j = 0; j < 6; ++j) {
        std::string home = KeyOnShard("g" + std::to_string(shard) + "x" +
                                          std::to_string(j),
                                      shard, kShards);
        tuples.push_back(Tuple(id++, 1.0,
                               {Value::String("low"),
                                Value::Discrete(Dist({{home, 0.92},
                                                      {hot, 0.08}}))}));
      }
    }
  }

  static Table* Build(Database* db, bool global_bound,
                      const TopKFixture& fx) {
    core::UpiOptions opt;
    opt.cluster_column = 1;
    opt.cutoff = 0.1;
    opt.charge_open_per_query = false;
    PartitionOptions popts;
    popts.num_shards = kShards;
    popts.fractured = false;  // plain UPI shards stream their top-k
    popts.topk_global_bound = global_bound;
    return db
        ->CreatePartitionedTable("t", Schema({{"Name", ValueType::kString},
                                              {"Inst", ValueType::kDiscrete}}),
                                 opt, {}, popts, fx.tuples)
        .ValueOrDie();
  }
};

TEST(GatherTest, TopKGlobalBoundReadsStrictlyFewerPagesThanDrainAll) {
  TopKFixture fx;
  DatabaseOptions dopt;
  dopt.gather_workers = 0;  // serial: deterministic shard order + page counts

  auto run = [&](bool global_bound, std::vector<core::PtqMatch>* rows) {
    Database db(dopt);
    Table* t = TopKFixture::Build(&db, global_bound, fx);
    db.ColdCache();
    sim::DiskStats before = db.env()->disk()->stats();
    EXPECT_TRUE(
        t->partitioned()->QueryTopK(fx.hot, TopKFixture::kK, rows).ok());
    return db.env()->disk()->stats() - before;
  };

  std::vector<core::PtqMatch> bounded_rows, drained_rows;
  sim::DiskStats bounded = run(true, &bounded_rows);
  sim::DiskStats drained = run(false, &drained_rows);

  // Identical results under either policy...
  ASSERT_EQ(bounded_rows.size(), TopKFixture::kK);
  ASSERT_EQ(drained_rows.size(), TopKFixture::kK);
  for (size_t i = 0; i < TopKFixture::kK; ++i) {
    EXPECT_EQ(bounded_rows[i].id, drained_rows[i].id);
    EXPECT_EQ(bounded_rows[i].confidence, drained_rows[i].confidence);
    // The key encoding quantizes the probability; compare within its step.
    EXPECT_NEAR(bounded_rows[i].confidence, 0.95, 1e-8);
  }
  // ...but the bound stops lagging shards before their cutoff-pointer
  // dereferences: strictly fewer simulated page reads.
  EXPECT_LT(bounded.reads, drained.reads);
}

// ---------------------------------------------------------------------------
// Partitioned results are bit-identical to unpartitioned, pruning on or off
// ---------------------------------------------------------------------------

struct EquivalenceFixture {
  datagen::DblpConfig cfg;
  std::unique_ptr<datagen::DblpGenerator> gen;
  std::vector<Tuple> authors;
  Database db;
  // Bit-identity holds per physical shard design, so each flat table is
  // compared against shards of the same design.
  Table* flat_upi = nullptr;   // plain UPI
  Table* part_upi = nullptr;   // 4 plain-UPI shards
  Table* flat_frac = nullptr;  // Fractured UPI
  Table* pruned = nullptr;     // 4 fractured shards, shard pruning on
  Table* unpruned = nullptr;   // 4 fractured shards, shard pruning off

  EquivalenceFixture() : db(Opts()) {
    cfg.num_authors = 1200;
    cfg.num_institutions = 60;
    cfg.seed = 99;
    gen = std::make_unique<datagen::DblpGenerator>(cfg);
    authors = gen->GenerateAuthors();
    core::UpiOptions opt;
    opt.cluster_column = AuthorCols::kInstitution;
    opt.cutoff = 0.1;
    const Schema schema = datagen::DblpGenerator::AuthorSchema();
    const std::vector<int> sec = {AuthorCols::kCountry};
    flat_upi = db.CreateUpiTable("u", schema, opt, sec, authors).ValueOrDie();
    flat_frac =
        db.CreateFracturedTable("f", schema, opt, sec, authors).ValueOrDie();
    PartitionOptions popts;
    popts.num_shards = 4;
    popts.fractured = false;
    part_upi = db.CreatePartitionedTable("pu", schema, opt, sec, popts,
                                         authors)
                   .ValueOrDie();
    popts.fractured = true;
    pruned = db.CreatePartitionedTable("pf", schema, opt, sec, popts, authors)
                 .ValueOrDie();
    popts.enable_pruning = false;
    unpruned =
        db.CreatePartitionedTable("pf0", schema, opt, sec, popts, authors)
            .ValueOrDie();
  }

  static DatabaseOptions Opts() {
    DatabaseOptions d;
    d.gather_workers = 2;
    return d;
  }

  /// Every distinct institution alternative in the data set.
  std::vector<std::string> Institutions() const {
    std::set<std::string> vals;
    for (const Tuple& t : authors) {
      const auto& v = t.Get(AuthorCols::kInstitution);
      for (const auto& alt : v.discrete().alternatives()) {
        vals.insert(alt.value);
      }
    }
    return {vals.begin(), vals.end()};
  }
};

/// `exact` compares confidences bit-for-bit — valid when both sides run the
/// same plan kind over the same shard design, so every row goes through
/// identical arithmetic. Planner-driven comparisons pass exact=false: plans
/// of different kinds legitimately differ in the last bits (key-decoded vs
/// recomputed confidence), partitioned or not.
void ExpectSameRows(const std::vector<core::PtqMatch>& a,
                    const std::vector<core::PtqMatch>& b,
                    const std::string& what, bool exact = true) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << what << " row " << i;
    if (exact) {
      EXPECT_EQ(a[i].confidence, b[i].confidence) << what << " row " << i;
    } else {
      EXPECT_NEAR(a[i].confidence, b[i].confidence, 1e-9)
          << what << " row " << i;
    }
  }
}

/// The path's native PTQ pinned to kPrimaryProbe (no planner): the exact
/// execution the scatter-gather must reproduce bit-for-bit.
std::vector<core::PtqMatch> PinnedProbe(const Table* t,
                                        const std::string& value, double qt) {
  engine::Plan plan;
  plan.kind = engine::PlanKind::kPrimaryProbe;
  plan.value = value;
  plan.qt = qt;
  std::vector<core::PtqMatch> rows;
  EXPECT_TRUE(Execute(*t->path(), plan, &rows).ok());
  return rows;
}

TEST(GatherTest, PartitionedPtqBitIdenticalToUnpartitioned) {
  EquivalenceFixture fx;
  for (const std::string& inst : fx.Institutions()) {
    for (double qt : {0.05, 0.3, 0.7}) {
      std::string what = "ptq " + inst + " qt=" + std::to_string(qt);
      // Pinned to the native probe on both sides: bit-identical, per design.
      ExpectSameRows(PinnedProbe(fx.flat_upi, inst, qt),
                     PinnedProbe(fx.part_upi, inst, qt),
                     what + " (plain shards)");
      std::vector<core::PtqMatch> frac_rows = PinnedProbe(fx.flat_frac, inst,
                                                          qt);
      ExpectSameRows(frac_rows, PinnedProbe(fx.pruned, inst, qt),
                     what + " (pruning on)");
      ExpectSameRows(frac_rows, PinnedProbe(fx.unpruned, inst, qt),
                     what + " (pruning off)");

      // Planner-driven executions agree on the result set; plan kinds may
      // differ across table shapes, so confidences compare within 1e-9.
      std::vector<core::PtqMatch> flat_run, part_run;
      ASSERT_TRUE(fx.flat_frac->Run(Query::Ptq(inst, qt), &flat_run).ok());
      ASSERT_TRUE(fx.pruned->Run(Query::Ptq(inst, qt), &part_run).ok());
      ExpectSameRows(flat_run, part_run, what + " (planned)", false);
    }
  }
}

TEST(GatherTest, PartitionedSecondaryAndTopKMatchUnpartitioned) {
  EquivalenceFixture fx;
  std::string inst = fx.gen->PopularInstitution();

  std::vector<core::PtqMatch> flat_rows, on_rows, off_rows;
  ASSERT_TRUE(fx.flat_frac
                  ->Run(Query::Secondary(AuthorCols::kCountry, "US", 0.3),
                        &flat_rows)
                  .ok());
  ASSERT_TRUE(fx.pruned
                  ->Run(Query::Secondary(AuthorCols::kCountry, "US", 0.3),
                        &on_rows)
                  .ok());
  ASSERT_TRUE(fx.unpruned
                  ->Run(Query::Secondary(AuthorCols::kCountry, "US", 0.3),
                        &off_rows)
                  .ok());
  ExpectSameRows(flat_rows, on_rows, "secondary (pruning on)", false);
  ExpectSameRows(flat_rows, off_rows, "secondary (pruning off)", false);

  for (size_t k : {1u, 5u, 20u}) {
    std::vector<core::PtqMatch> flat_k, part_k;
    ASSERT_TRUE(fx.flat_frac->partitioned() == nullptr);
    ASSERT_TRUE(fx.flat_frac->path()->QueryTopK(inst, k, &flat_k).ok());
    ASSERT_TRUE(fx.pruned->partitioned()->QueryTopK(inst, k, &part_k).ok());
    ExpectSameRows(flat_k, part_k, "topk k=" + std::to_string(k));
  }
}

TEST(GatherTest, PartitionedCursorStreamsInGlobalOrder) {
  EquivalenceFixture fx;
  std::string inst = fx.gen->PopularInstitution();
  std::vector<core::PtqMatch> materialized;
  ASSERT_TRUE(fx.pruned->Run(Query::Ptq(inst, 0.05), &materialized).ok());
  ASSERT_GT(materialized.size(), 5u);

  auto cursor = fx.pruned->OpenCursor(Query::Ptq(inst, 0.05)).ValueOrDie();
  std::vector<core::PtqMatch> streamed;
  core::PtqMatch m;
  while (cursor->TakeNext(&m)) streamed.push_back(std::move(m));
  ASSERT_TRUE(cursor->status().ok());
  ExpectSameRows(materialized, streamed, "merged stream");
  // Globally ordered as it streams: descending confidence throughout.
  for (size_t i = 1; i < streamed.size(); ++i) {
    EXPECT_GE(streamed[i - 1].confidence, streamed[i].confidence);
  }
}

}  // namespace
}  // namespace upi::exec
