#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/db_env.h"
#include "storage/heap_file.h"
#include "storage/page_file.h"
#include "storage/pager.h"

namespace upi::storage {
namespace {

TEST(PageFileTest, AllocateSequentialAddresses) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  PageId a = f.Allocate();
  PageId b = f.Allocate();
  EXPECT_EQ(f.AddressOf(b), f.AddressOf(a) + 4096);
  EXPECT_EQ(f.num_active_pages(), 2u);
  EXPECT_EQ(f.size_bytes(), 8192u);
}

TEST(PageFileTest, ReadWriteRoundTrip) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  PageId a = f.Allocate();
  f.Write(a, "hello page");
  std::string out;
  f.Read(a, &out);
  EXPECT_EQ(out, "hello page");
}

TEST(PageFileTest, FreeListReuse) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  PageId a = f.Allocate();
  f.Allocate();
  uint64_t addr_a = f.AddressOf(a);
  f.Free(a);
  PageId c = f.Allocate();
  EXPECT_EQ(c, a);  // reuses the freed slot...
  EXPECT_EQ(f.AddressOf(c), addr_a);  // ...at the same physical address
  EXPECT_EQ(f.size_bytes(), 8192u);   // footprint unchanged
}

TEST(PageFileTest, InterleavedFilesShareDiskAddressSpace) {
  sim::SimDisk disk;
  PageFile f1(&disk, "a", 4096);
  PageFile f2(&disk, "b", 4096);
  PageId p1 = f1.Allocate();
  PageId p2 = f2.Allocate();
  PageId p3 = f1.Allocate();
  // f1's two pages are NOT contiguous because f2 allocated in between.
  EXPECT_EQ(f2.AddressOf(p2), f1.AddressOf(p1) + 4096);
  EXPECT_EQ(f1.AddressOf(p3), f1.AddressOf(p1) + 8192);
}

TEST(BufferPoolTest, HitAvoidsDiskRead) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  f.Write(a, "x");
  uint64_t reads_before = disk.stats().reads;
  pool.Fetch(&f, a);
  pool.Unpin(&f, a);
  pool.Fetch(&f, a);  // hit
  pool.Unpin(&f, a);
  EXPECT_EQ(disk.stats().reads - reads_before, 1u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, CreateSkipsRead) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  uint64_t reads_before = disk.stats().reads;
  std::string* data = pool.Fetch(&f, a, /*create=*/true);
  *data = "fresh";
  pool.Unpin(&f, a);
  EXPECT_EQ(disk.stats().reads, reads_before);
  pool.FlushAll();
  std::string out;
  f.Read(a, &out);
  EXPECT_EQ(out, "fresh");
}

TEST(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(2 * 4096);  // room for ~2 pages
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    PageId id = f.Allocate();
    std::string* data = pool.Fetch(&f, id, true);
    *data = "page" + std::to_string(i);
    pool.MarkDirty(&f, id);
    pool.Unpin(&f, id);
    ids.push_back(id);
  }
  pool.FlushAll();
  for (int i = 0; i < 4; ++i) {
    std::string out;
    f.Read(ids[i], &out);
    EXPECT_EQ(out, "page" + std::to_string(i));
  }
}

TEST(BufferPoolTest, DropAllGivesColdCache) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  f.Write(a, "z");
  pool.Fetch(&f, a);
  pool.Unpin(&f, a);
  pool.DropAll();
  uint64_t reads_before = disk.stats().reads;
  pool.Fetch(&f, a);  // must hit the disk again
  pool.Unpin(&f, a);
  EXPECT_EQ(disk.stats().reads - reads_before, 1u);
}

TEST(BufferPoolTest, DiscardDropsDirtyData) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  f.Write(a, "original");
  std::string* data = pool.Fetch(&f, a);
  *data = "mutated";
  pool.MarkDirty(&f, a);
  pool.Unpin(&f, a);
  pool.Discard(&f, a);
  std::string out;
  f.Read(a, &out);
  EXPECT_EQ(out, "original");
}

TEST(PagerTest, PageRefUnpinsOnDestruction) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  Pager pager(&pool, &f);
  PageId id;
  {
    PageRef ref = pager.New(&id);
    *ref.data() = "abc";
    ref.MarkDirty();
  }
  pool.DropAll();  // asserts nothing pinned
  {
    PageRef ref = pager.Get(id);
    EXPECT_EQ(*ref.data(), "abc");
  }
}

TEST(HeapFileTest, InsertReadRoundTrip) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 8192);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  Rid rid = heap.Insert("tuple-data").ValueOrDie();
  std::string out;
  ASSERT_TRUE(heap.Read(rid, &out).ok());
  EXPECT_EQ(out, "tuple-data");
  EXPECT_EQ(heap.live_records(), 1u);
}

TEST(HeapFileTest, DeleteLeavesHole) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 8192);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  Rid a = heap.Insert("a").ValueOrDie();
  Rid b = heap.Insert("b").ValueOrDie();
  ASSERT_TRUE(heap.Delete(a).ok());
  std::string out;
  EXPECT_TRUE(heap.Read(a, &out).IsNotFound());
  ASSERT_TRUE(heap.Read(b, &out).ok());
  EXPECT_EQ(out, "b");
  EXPECT_EQ(heap.live_records(), 1u);
  // Double delete reports NotFound.
  EXPECT_TRUE(heap.Delete(a).IsNotFound());
}

TEST(HeapFileTest, SpillsToNewPages) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 4096);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  std::string record(1000, 'x');
  for (int i = 0; i < 20; ++i) heap.Insert(record).ValueOrDie();
  EXPECT_GT(heap.num_pages(), 4u);
  EXPECT_EQ(heap.live_records(), 20u);
}

TEST(HeapFileTest, ScanVisitsLiveRecordsInOrder) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 4096);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  std::vector<Rid> rids;
  for (int i = 0; i < 50; ++i) {
    rids.push_back(heap.Insert("rec" + std::to_string(i)).ValueOrDie());
  }
  ASSERT_TRUE(heap.Delete(rids[10]).ok());
  ASSERT_TRUE(heap.Delete(rids[20]).ok());
  std::set<std::string> seen;
  heap.Scan([&](Rid, std::string_view rec) {
    seen.insert(std::string(rec));
    return true;
  });
  EXPECT_EQ(seen.size(), 48u);
  EXPECT_FALSE(seen.contains("rec10"));
  EXPECT_TRUE(seen.contains("rec11"));
}

TEST(HeapFileTest, ScanEarlyStop) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 4096);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  for (int i = 0; i < 10; ++i) heap.Insert("r").ValueOrDie();
  int count = 0;
  heap.Scan([&](Rid, std::string_view) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

TEST(HeapFileTest, RejectsOversizedRecord) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 4096);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  std::string record(5000, 'x');
  EXPECT_FALSE(heap.Insert(record).ok());
}

// --- Pin-protocol invariants: hard checks that fire in every build type ----
// (These used to be plain asserts, compiled out under RelWithDebInfo, so
// Unpin of an unmapped frame dereferenced frames_.end() in release builds.)

TEST(BufferPoolDeathTest, UnpinOfUnmappedFrameAborts) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  EXPECT_DEATH(pool.Unpin(&f, a), "no mapped frame");
}

TEST(BufferPoolDeathTest, DoubleUnpinAborts) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  f.Write(a, "x");
  pool.Fetch(&f, a);
  pool.Unpin(&f, a);
  EXPECT_DEATH(pool.Unpin(&f, a), "unpinned frame");
}

TEST(BufferPoolDeathTest, MarkDirtyOfUnmappedFrameAborts) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  EXPECT_DEATH(pool.MarkDirty(&f, a), "no mapped frame");
}

TEST(BufferPoolDeathTest, DiscardOfPinnedPageAborts) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  f.Write(a, "x");
  pool.Fetch(&f, a);  // stays pinned
  EXPECT_DEATH(pool.Discard(&f, a), "pinned");
}

TEST(PageFileDeathTest, ReadOfFreedPageAborts) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  PageId a = f.Allocate();
  f.Free(a);
  std::string out;
  EXPECT_DEATH(f.Read(a, &out), "freed page");
}

TEST(PageFileDeathTest, DoubleFreeAborts) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  PageId a = f.Allocate();
  f.Free(a);
  EXPECT_DEATH(f.Free(a), "already-freed");
}

// --- Recycled PageId regression ------------------------------------------
// A page freed without going through this pool's Discard (e.g. freed via a
// different Pager layered on the same file) can leave a stale resident
// frame; Fetch(create=true) must hand back a fresh page, not the old bytes.

TEST(BufferPoolTest, RecycledPageIdGetsFreshFrame) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  std::string* data = pool.Fetch(&f, a, /*create=*/true);
  *data = "stale bytes";
  pool.MarkDirty(&f, a);
  pool.Unpin(&f, a);
  f.Free(a);                  // bypasses pool.Discard on purpose
  PageId b = f.Allocate();
  ASSERT_EQ(b, a);            // recycled
  data = pool.Fetch(&f, b, /*create=*/true);
  EXPECT_TRUE(data->empty()) << "stale frame returned for a fresh page";
  *data = "fresh";
  pool.Unpin(&f, b);
  pool.FlushAll();            // create-path frames must reach the device
  std::string out;
  f.Read(b, &out);
  EXPECT_EQ(out, "fresh");
}

// --- Capacity accounting ---------------------------------------------------

TEST(BufferPoolTest, NeverExceedsCapacityWithUnpinnedFramesAvailable) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  const uint64_t capacity = 4 * 4096;
  BufferPool pool(capacity, /*num_shards=*/1);
  for (int i = 0; i < 16; ++i) {
    PageId id = f.Allocate();
    std::string* data = pool.Fetch(&f, id, /*create=*/true);
    *data = "p" + std::to_string(i);
    pool.Unpin(&f, id);
    EXPECT_LE(pool.cached_bytes(), capacity) << "after page " << i;
  }
  EXPECT_EQ(pool.cached_bytes(), capacity);  // exactly full, no overshoot
}

// --- Sharding --------------------------------------------------------------

TEST(BufferPoolTest, PagesSpreadAcrossShards) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(64 << 20);
  ASSERT_EQ(pool.num_shards(), BufferPool::kDefaultShards);
  std::set<size_t> used;
  for (PageId id = 0; id < 256; ++id) {
    size_t shard = pool.ShardIndexOf(&f, id);
    ASSERT_LT(shard, pool.num_shards());
    used.insert(shard);
  }
  // 256 consecutive ids over 16 shards: a lopsided hash would funnel them
  // into a few shards and serialize clients again.
  EXPECT_GE(used.size(), pool.num_shards() - 2);
}

// --- Scan resistance (midpoint insertion) ---------------------------------

TEST(BufferPoolTest, FullScanDoesNotEvictHotPages) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(8 * 4096, /*num_shards=*/1);
  // Resident set: 8 one-touch pages...
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    PageId id = f.Allocate();
    f.Write(id, "r" + std::to_string(i));
    pool.Fetch(&f, id);
    pool.Unpin(&f, id);
    ids.push_back(id);
  }
  // ...of which two become hot via re-reference.
  for (int i = 0; i < 2; ++i) {
    pool.Fetch(&f, ids[i]);
    pool.Unpin(&f, ids[i]);
  }
  // A 50-page one-touch scan churns through the pool.
  for (int i = 0; i < 50; ++i) {
    PageId id = f.Allocate();
    f.Write(id, "scan");
    pool.Fetch(&f, id);
    pool.Unpin(&f, id);
  }
  // The hot pages survived the scan: re-fetching them costs no disk read.
  uint64_t reads_before = disk.stats().reads;
  for (int i = 0; i < 2; ++i) {
    pool.Fetch(&f, ids[i]);
    pool.Unpin(&f, ids[i]);
  }
  EXPECT_EQ(disk.stats().reads, reads_before);
}

// --- Loading-frame wait path -----------------------------------------------

TEST(BufferPoolTest, ConcurrentFetchersOfOnePageShareOneRead) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  for (int iter = 0; iter < 8; ++iter) {
    PageId id = f.Allocate();
    std::string payload = "page-" + std::to_string(iter);
    f.Write(id, payload);
    uint64_t reads_before = disk.stats().reads;
    constexpr int kFetchers = 4;
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kFetchers; ++t) {
      threads.emplace_back([&] {
        ready.fetch_add(1);
        while (ready.load() < kFetchers) {}  // start the stampede together
        std::string* data = pool.Fetch(&f, id);
        EXPECT_EQ(*data, payload);
        pool.Unpin(&f, id);
      });
    }
    for (auto& t : threads) t.join();
    // One fetcher loaded; the rest waited on the loading frame's condvar.
    EXPECT_EQ(disk.stats().reads - reads_before, 1u);
  }
}

// --- Threaded stress (run under TSan in CI) --------------------------------

TEST(BufferPoolStressTest, MixedTrafficAcrossShards) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  // Small pool so the workload constantly evicts and writes back.
  BufferPool pool(24 * 4096);
  constexpr int kThreads = 4;
  constexpr int kPagesPerThread = 32;
  constexpr int kIters = 400;
  // Pre-allocate so Allocate/Fetch interleaving is not part of this test.
  std::vector<PageId> ids;
  for (int i = 0; i < kThreads * kPagesPerThread; ++i) ids.push_back(f.Allocate());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns a disjoint page range (the single-writer-per-page
      // contract); reads, writes, discards, and evictions still collide on
      // shards, frames, and the disk from all threads.
      std::mt19937 rng(t);
      std::vector<int> version(kPagesPerThread, -1);
      for (int i = 0; i < kIters; ++i) {
        int slot = static_cast<int>(rng() % kPagesPerThread);
        PageId id = ids[t * kPagesPerThread + slot];
        bool fresh = version[slot] < 0;
        std::string* data = pool.Fetch(&f, id, /*create=*/fresh);
        if (!fresh) {
          EXPECT_EQ(*data, std::to_string(version[slot])) << "page " << id;
        }
        version[slot] = i;
        *data = std::to_string(i);
        pool.MarkDirty(&f, id);
        pool.Unpin(&f, id);
        if (rng() % 64 == 0) {
          // Forget a page entirely; next touch recreates it.
          pool.Discard(&f, id);
          version[slot] = -1;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(pool.misses(), 0u);
  pool.FlushAll();
  // Victims come from the missing page's own shard, so a shard whose frames
  // are all pinned (or empty) may overshoot by its incoming page; the global
  // bound under sharding is capacity plus one page per shard. (The exact
  // bound is asserted by NeverExceedsCapacityWithUnpinnedFramesAvailable,
  // which runs single-sharded.)
  EXPECT_LE(pool.cached_bytes(), 24 * 4096u + pool.num_shards() * 4096u);
}

TEST(PageFileStressTest, ConcurrentAllocateWriteFree) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        PageId id = f.Allocate();
        std::string payload = std::to_string(t) + ":" + std::to_string(i);
        f.Write(id, payload);
        std::string out;
        f.Read(id, &out);
        EXPECT_EQ(out, payload);
        f.Free(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(f.num_active_pages(), 0u);
}

TEST(DbEnvTest, DuplicateFileNameIsRejected) {
  // Regression: CreateFile used to silently create a second file under an
  // existing name, shadowing live data.
  DbEnv env;
  ASSERT_NE(env.CreateFile("t.heap", 4096), nullptr);
  auto dup = env.TryCreateFile("t.heap", 4096);
  ASSERT_FALSE(dup.ok());
  EXPECT_TRUE(dup.status().IsAlreadyExists());
  EXPECT_NE(dup.status().message().find("t.heap"), std::string::npos);
  // Distinct names still work.
  EXPECT_NE(env.CreateFile("t.cutoff", 4096), nullptr);
  // The abort-on-duplicate contract of the pointer-returning variant.
  EXPECT_DEATH(env.CreateFile("t.heap", 4096), "already exists");
}

}  // namespace
}  // namespace upi::storage
