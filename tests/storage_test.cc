#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/db_env.h"
#include "storage/heap_file.h"
#include "storage/page_file.h"
#include "storage/pager.h"

namespace upi::storage {
namespace {

TEST(PageFileTest, AllocateSequentialAddresses) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  PageId a = f.Allocate();
  PageId b = f.Allocate();
  EXPECT_EQ(f.AddressOf(b), f.AddressOf(a) + 4096);
  EXPECT_EQ(f.num_active_pages(), 2u);
  EXPECT_EQ(f.size_bytes(), 8192u);
}

TEST(PageFileTest, ReadWriteRoundTrip) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  PageId a = f.Allocate();
  f.Write(a, "hello page");
  std::string out;
  f.Read(a, &out);
  EXPECT_EQ(out, "hello page");
}

TEST(PageFileTest, FreeListReuse) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  PageId a = f.Allocate();
  f.Allocate();
  uint64_t addr_a = f.AddressOf(a);
  f.Free(a);
  PageId c = f.Allocate();
  EXPECT_EQ(c, a);  // reuses the freed slot...
  EXPECT_EQ(f.AddressOf(c), addr_a);  // ...at the same physical address
  EXPECT_EQ(f.size_bytes(), 8192u);   // footprint unchanged
}

TEST(PageFileTest, InterleavedFilesShareDiskAddressSpace) {
  sim::SimDisk disk;
  PageFile f1(&disk, "a", 4096);
  PageFile f2(&disk, "b", 4096);
  PageId p1 = f1.Allocate();
  PageId p2 = f2.Allocate();
  PageId p3 = f1.Allocate();
  // f1's two pages are NOT contiguous because f2 allocated in between.
  EXPECT_EQ(f2.AddressOf(p2), f1.AddressOf(p1) + 4096);
  EXPECT_EQ(f1.AddressOf(p3), f1.AddressOf(p1) + 8192);
}

TEST(BufferPoolTest, HitAvoidsDiskRead) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  f.Write(a, "x");
  uint64_t reads_before = disk.stats().reads;
  pool.Fetch(&f, a);
  pool.Unpin(&f, a);
  pool.Fetch(&f, a);  // hit
  pool.Unpin(&f, a);
  EXPECT_EQ(disk.stats().reads - reads_before, 1u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, CreateSkipsRead) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  uint64_t reads_before = disk.stats().reads;
  std::string* data = pool.Fetch(&f, a, /*create=*/true);
  *data = "fresh";
  pool.Unpin(&f, a);
  EXPECT_EQ(disk.stats().reads, reads_before);
  pool.FlushAll();
  std::string out;
  f.Read(a, &out);
  EXPECT_EQ(out, "fresh");
}

TEST(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(2 * 4096);  // room for ~2 pages
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    PageId id = f.Allocate();
    std::string* data = pool.Fetch(&f, id, true);
    *data = "page" + std::to_string(i);
    pool.MarkDirty(&f, id);
    pool.Unpin(&f, id);
    ids.push_back(id);
  }
  pool.FlushAll();
  for (int i = 0; i < 4; ++i) {
    std::string out;
    f.Read(ids[i], &out);
    EXPECT_EQ(out, "page" + std::to_string(i));
  }
}

TEST(BufferPoolTest, DropAllGivesColdCache) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  f.Write(a, "z");
  pool.Fetch(&f, a);
  pool.Unpin(&f, a);
  pool.DropAll();
  uint64_t reads_before = disk.stats().reads;
  pool.Fetch(&f, a);  // must hit the disk again
  pool.Unpin(&f, a);
  EXPECT_EQ(disk.stats().reads - reads_before, 1u);
}

TEST(BufferPoolTest, DiscardDropsDirtyData) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  PageId a = f.Allocate();
  f.Write(a, "original");
  std::string* data = pool.Fetch(&f, a);
  *data = "mutated";
  pool.MarkDirty(&f, a);
  pool.Unpin(&f, a);
  pool.Discard(&f, a);
  std::string out;
  f.Read(a, &out);
  EXPECT_EQ(out, "original");
}

TEST(PagerTest, PageRefUnpinsOnDestruction) {
  sim::SimDisk disk;
  PageFile f(&disk, "t", 4096);
  BufferPool pool(1 << 20);
  Pager pager(&pool, &f);
  PageId id;
  {
    PageRef ref = pager.New(&id);
    *ref.data() = "abc";
    ref.MarkDirty();
  }
  pool.DropAll();  // asserts nothing pinned
  {
    PageRef ref = pager.Get(id);
    EXPECT_EQ(*ref.data(), "abc");
  }
}

TEST(HeapFileTest, InsertReadRoundTrip) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 8192);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  Rid rid = heap.Insert("tuple-data").ValueOrDie();
  std::string out;
  ASSERT_TRUE(heap.Read(rid, &out).ok());
  EXPECT_EQ(out, "tuple-data");
  EXPECT_EQ(heap.live_records(), 1u);
}

TEST(HeapFileTest, DeleteLeavesHole) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 8192);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  Rid a = heap.Insert("a").ValueOrDie();
  Rid b = heap.Insert("b").ValueOrDie();
  ASSERT_TRUE(heap.Delete(a).ok());
  std::string out;
  EXPECT_TRUE(heap.Read(a, &out).IsNotFound());
  ASSERT_TRUE(heap.Read(b, &out).ok());
  EXPECT_EQ(out, "b");
  EXPECT_EQ(heap.live_records(), 1u);
  // Double delete reports NotFound.
  EXPECT_TRUE(heap.Delete(a).IsNotFound());
}

TEST(HeapFileTest, SpillsToNewPages) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 4096);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  std::string record(1000, 'x');
  for (int i = 0; i < 20; ++i) heap.Insert(record).ValueOrDie();
  EXPECT_GT(heap.num_pages(), 4u);
  EXPECT_EQ(heap.live_records(), 20u);
}

TEST(HeapFileTest, ScanVisitsLiveRecordsInOrder) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 4096);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  std::vector<Rid> rids;
  for (int i = 0; i < 50; ++i) {
    rids.push_back(heap.Insert("rec" + std::to_string(i)).ValueOrDie());
  }
  ASSERT_TRUE(heap.Delete(rids[10]).ok());
  ASSERT_TRUE(heap.Delete(rids[20]).ok());
  std::set<std::string> seen;
  heap.Scan([&](Rid, std::string_view rec) {
    seen.insert(std::string(rec));
    return true;
  });
  EXPECT_EQ(seen.size(), 48u);
  EXPECT_FALSE(seen.contains("rec10"));
  EXPECT_TRUE(seen.contains("rec11"));
}

TEST(HeapFileTest, ScanEarlyStop) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 4096);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  for (int i = 0; i < 10; ++i) heap.Insert("r").ValueOrDie();
  int count = 0;
  heap.Scan([&](Rid, std::string_view) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

TEST(HeapFileTest, RejectsOversizedRecord) {
  sim::SimDisk disk;
  PageFile f(&disk, "heap", 4096);
  BufferPool pool(1 << 20);
  HeapFile heap(Pager(&pool, &f));
  std::string record(5000, 'x');
  EXPECT_FALSE(heap.Insert(record).ok());
}

TEST(DbEnvTest, DuplicateFileNameIsRejected) {
  // Regression: CreateFile used to silently create a second file under an
  // existing name, shadowing live data.
  DbEnv env;
  ASSERT_NE(env.CreateFile("t.heap", 4096), nullptr);
  auto dup = env.TryCreateFile("t.heap", 4096);
  ASSERT_FALSE(dup.ok());
  EXPECT_TRUE(dup.status().IsAlreadyExists());
  EXPECT_NE(dup.status().message().find("t.heap"), std::string::npos);
  // Distinct names still work.
  EXPECT_NE(env.CreateFile("t.cutoff", 4096), nullptr);
  // The abort-on-duplicate contract of the pointer-returning variant.
  EXPECT_DEATH(env.CreateFile("t.heap", 4096), "already exists");
}

}  // namespace
}  // namespace upi::storage
