#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "catalog/value.h"

namespace upi::catalog {
namespace {

prob::DiscreteDistribution Dist(std::vector<prob::Alternative> alts) {
  return prob::DiscreteDistribution::Make(std::move(alts)).ValueOrDie();
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int64(-5).int64(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("x").str(), "x");
  auto d = Value::Discrete(Dist({{"MIT", 0.95}, {"UCB", 0.05}}));
  EXPECT_EQ(d.type(), ValueType::kDiscrete);
  EXPECT_EQ(d.discrete().First().value, "MIT");
}

TEST(ValueTest, SerializeRoundTripAllTypes) {
  std::vector<Value> vals = {
      Value::Null(),
      Value::Int64(1234567890123),
      Value::Int64(-7),
      Value::Double(-0.25),
      Value::String("hello world"),
      Value::String(""),
      Value::Discrete(Dist({{"Brown", 0.72}, {"MIT", 0.18}})),
      Value::Gaussian(prob::ConstrainedGaussian2D({42.0, -71.0}, 0.01, 0.03)),
  };
  std::string buf;
  for (const Value& v : vals) v.Serialize(&buf);
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  for (const Value& expected : vals) {
    Value out;
    ASSERT_TRUE(Value::Deserialize(&p, limit, &out).ok());
    EXPECT_EQ(out.type(), expected.type());
    if (expected.type() != ValueType::kDiscrete) {
      EXPECT_TRUE(out == expected);
    } else {
      // Probabilities round-trip through fixed-point encoding.
      EXPECT_EQ(out.discrete().size(), expected.discrete().size());
      EXPECT_NEAR(out.discrete().First().prob, expected.discrete().First().prob,
                  1e-8);
    }
  }
  EXPECT_EQ(p, limit);
}

TEST(ValueTest, DeserializeCorruptFails) {
  std::string buf;
  Value::Int64(5).Serialize(&buf);
  const char* p = buf.data();
  Value out;
  EXPECT_FALSE(Value::Deserialize(&p, buf.data() + 4, &out).ok());
}

TEST(SchemaTest, FindColumn) {
  Schema s({{"Name", ValueType::kString},
            {"Institution", ValueType::kDiscrete},
            {"Country", ValueType::kDiscrete}});
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.FindColumn("Institution"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
  EXPECT_NE(s.ToString().find("Institution DISCRETE^p"), std::string::npos);
}

TEST(TupleTest, SerializeRoundTrip) {
  Tuple t(77, 0.9,
          {Value::String("Alice"),
           Value::Discrete(Dist({{"Brown", 0.8}, {"MIT", 0.2}})),
           Value::String(std::string(200, 'p'))});
  std::string buf;
  t.Serialize(&buf);
  Tuple out = Tuple::Deserialize(buf).ValueOrDie();
  EXPECT_EQ(out.id(), 77u);
  EXPECT_NEAR(out.existence(), 0.9, 1e-8);
  ASSERT_EQ(out.values().size(), 3u);
  EXPECT_EQ(out.Get(0).str(), "Alice");
  EXPECT_EQ(out.Get(1).discrete().First().value, "Brown");
  EXPECT_EQ(out.Get(2).str().size(), 200u);
}

TEST(TupleTest, ConfidenceOfUsesExistence) {
  // Paper Table 2: Alice's Brown entry has probability 80% * 90% = 72%.
  Tuple t(1, 0.9, {Value::Discrete(Dist({{"Brown", 0.8}, {"MIT", 0.2}}))});
  EXPECT_NEAR(t.ConfidenceOf(0, "Brown"), 0.72, 1e-8);
  EXPECT_NEAR(t.ConfidenceOf(0, "MIT"), 0.18, 1e-8);
  EXPECT_DOUBLE_EQ(t.ConfidenceOf(0, "UCB"), 0.0);
}

TEST(TupleTest, DeserializeTruncatedFails) {
  Tuple t(1, 1.0, {Value::String("x")});
  std::string buf;
  t.Serialize(&buf);
  EXPECT_FALSE(Tuple::Deserialize(std::string_view(buf.data(), 5)).ok());
}

}  // namespace
}  // namespace upi::catalog
