#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "common/status.h"

namespace upi {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing key");
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk on fire");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ResultTest, WorksWithoutDefaultConstructor) {
  struct NoDefault {
    explicit NoDefault(int x) : v(x) {}
    int v;
  };
  Result<NoDefault> r = NoDefault(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().v, 7);
}

TEST(CodingTest, Fixed32BERoundTripAndOrder) {
  std::string a, b;
  PutFixed32BE(&a, 1);
  PutFixed32BE(&b, 300);
  EXPECT_LT(a, b);  // big-endian preserves numeric order
  EXPECT_EQ(GetFixed32BE(a.data()), 1u);
  EXPECT_EQ(GetFixed32BE(b.data()), 300u);
}

TEST(CodingTest, Fixed64BERoundTrip) {
  std::string s;
  PutFixed64BE(&s, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(GetFixed64BE(s.data()), 0xDEADBEEFCAFEBABEull);
}

TEST(CodingTest, VarintRoundTrip) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 16383u, 16384u, 0xFFFFFFFFu}) {
    std::string s;
    PutVarint32(&s, v);
    uint32_t decoded;
    size_t n = GetVarint32(s.data(), s.data() + s.size(), &decoded);
    EXPECT_EQ(n, s.size());
    EXPECT_EQ(decoded, v);
  }
}

TEST(CodingTest, VarintTruncatedReturnsZero) {
  std::string s;
  PutVarint32(&s, 1u << 20);
  uint32_t v;
  EXPECT_EQ(GetVarint32(s.data(), s.data() + 1, &v), 0u);
}

TEST(CodingTest, OrderedStringRoundTrip) {
  for (std::string in : {std::string(""), std::string("abc"),
                         std::string("a\0b", 3), std::string("\0\0", 2),
                         std::string("ends with nul\0", 14)}) {
    std::string enc;
    AppendOrderedString(&enc, in);
    const char* p = enc.data();
    std::string out;
    ASSERT_TRUE(DecodeOrderedString(&p, enc.data() + enc.size(), &out).ok());
    EXPECT_EQ(out, in);
    EXPECT_EQ(p, enc.data() + enc.size());
  }
}

TEST(CodingTest, OrderedStringPreservesOrder) {
  // Encoded order must equal logical string order even with embedded NULs.
  std::vector<std::string> inputs = {
      std::string(""), std::string("\0", 1), std::string("\0\0", 2),
      std::string("\x01"), std::string("a"), std::string("a\0", 2),
      std::string("a\0b", 3), std::string("a\x01"), std::string("ab"),
      std::string("b")};
  for (size_t i = 0; i + 1 < inputs.size(); ++i) {
    std::string e1, e2;
    AppendOrderedString(&e1, inputs[i]);
    AppendOrderedString(&e2, inputs[i + 1]);
    EXPECT_LT(e1, e2) << "inputs " << i << " and " << i + 1;
  }
}

TEST(CodingTest, OrderedStringDecodeStopsAtTerminator) {
  std::string enc;
  AppendOrderedString(&enc, "first");
  AppendOrderedString(&enc, "second");
  const char* p = enc.data();
  std::string out;
  ASSERT_TRUE(DecodeOrderedString(&p, enc.data() + enc.size(), &out).ok());
  EXPECT_EQ(out, "first");
  out.clear();
  ASSERT_TRUE(DecodeOrderedString(&p, enc.data() + enc.size(), &out).ok());
  EXPECT_EQ(out, "second");
}

TEST(CodingTest, ProbDescSortsDescending) {
  std::string p90, p50, p10;
  AppendProbDesc(&p90, 0.9);
  AppendProbDesc(&p50, 0.5);
  AppendProbDesc(&p10, 0.1);
  EXPECT_LT(p90, p50);
  EXPECT_LT(p50, p10);
  EXPECT_NEAR(DecodeProbDesc(p90.data()), 0.9, 1e-8);
  EXPECT_NEAR(DecodeProbDesc(p10.data()), 0.1, 1e-8);
}

TEST(CodingTest, ProbDescClampsOutOfRange) {
  std::string lo, hi;
  AppendProbDesc(&lo, -0.5);
  AppendProbDesc(&hi, 1.5);
  EXPECT_NEAR(DecodeProbDesc(lo.data()), 0.0, 1e-9);
  EXPECT_NEAR(DecodeProbDesc(hi.data()), 1.0, 1e-9);
}

TEST(CodingTest, OrderedDoubleOrderAndRoundTrip) {
  std::vector<double> vals = {-1e300, -5.5, -0.0, 0.0, 1e-300, 2.5, 7e88};
  std::vector<std::string> encs;
  for (double v : vals) {
    std::string e;
    AppendOrderedDouble(&e, v);
    EXPECT_DOUBLE_EQ(DecodeOrderedDouble(e.data()), v);
    encs.push_back(e);
  }
  for (size_t i = 0; i + 1 < encs.size(); ++i) {
    EXPECT_LE(encs[i], encs[i + 1]);
  }
}

TEST(RandomTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RandomTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(10), 10u);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(100, 1.0);
  double sum = 0.0;
  for (size_t k = 0; k < 100; ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostLikely) {
  ZipfDistribution z(1000, 1.0);
  EXPECT_GT(z.Pmf(0), z.Pmf(1));
  EXPECT_GT(z.Pmf(1), z.Pmf(999));
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfDistribution z(50, 1.0);
  Rng rng(3);
  std::vector<int> counts(50, 0);
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[z.Sample(&rng)];
  for (size_t k : {size_t{0}, size_t{1}, size_t{5}, size_t{20}}) {
    double expected = z.Pmf(k) * kSamples;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 10);
  }
}

}  // namespace
}  // namespace upi
