#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "core/fractured_upi.h"
#include "datagen/dblp.h"
#include "maintenance/manager.h"
#include "maintenance/merge_policy.h"
#include "maintenance/task_queue.h"
#include "storage/db_env.h"

namespace upi::maintenance {
namespace {

using catalog::Tuple;
using catalog::TupleId;
using core::FracturedUpi;
using core::PtqMatch;
using core::UpiOptions;

struct Fx {
  datagen::DblpConfig cfg;
  std::unique_ptr<datagen::DblpGenerator> gen;
  std::vector<Tuple> tuples;
  storage::DbEnv env;
  std::unique_ptr<FracturedUpi> table;
  TupleId next_id = 0;

  explicit Fx(uint64_t n = 600, uint64_t seed = 11) {
    cfg.num_authors = n;
    cfg.num_institutions = 50;
    cfg.seed = seed;
    gen = std::make_unique<datagen::DblpGenerator>(cfg);
    tuples = gen->GenerateAuthors();
    UpiOptions opt;
    opt.cluster_column = datagen::AuthorCols::kInstitution;
    opt.cutoff = 0.1;
    table = std::make_unique<FracturedUpi>(
        &env, "authors", datagen::DblpGenerator::AuthorSchema(), opt,
        std::vector<int>{});
    EXPECT_TRUE(table->BuildMain(tuples).ok());
    next_id = n + 1;
  }

  Tuple MakeAuthor() { return gen->MakeAuthor(next_id++); }

  std::map<TupleId, double> Oracle(const std::string& value, double qt,
                                   const std::set<TupleId>& deleted,
                                   const std::vector<Tuple>& extra) {
    std::map<TupleId, double> oracle;
    auto consider = [&](const Tuple& t) {
      if (deleted.contains(t.id())) return;
      double conf = t.ConfidenceOf(datagen::AuthorCols::kInstitution, value);
      if (conf >= qt && conf > 0) oracle[t.id()] = conf;
    };
    for (const Tuple& t : tuples) consider(t);
    for (const Tuple& t : extra) consider(t);
    return oracle;
  }
};

MergePolicyOptions NoMergePolicy() {
  MergePolicyOptions p;
  p.merges_enabled = false;
  return p;
}

// ---------------------------------------------------------------------------
// TaskQueue
// ---------------------------------------------------------------------------

TEST(TaskQueueTest, FifoAndTryPop) {
  TaskQueue q;
  EXPECT_TRUE(q.Push({TaskKind::kFlush, nullptr, 0}));
  EXPECT_TRUE(q.Push({TaskKind::kMergePartial, nullptr, 3}));
  EXPECT_EQ(q.size(), 2u);
  MaintenanceTask t;
  ASSERT_TRUE(q.TryPop(&t));
  EXPECT_EQ(t.kind, TaskKind::kFlush);
  ASSERT_TRUE(q.TryPop(&t));
  EXPECT_EQ(t.kind, TaskKind::kMergePartial);
  EXPECT_EQ(t.merge_count, 3u);
  EXPECT_FALSE(q.TryPop(&t));
}

TEST(TaskQueueTest, CloseDrainsQueuedTasksThenStops) {
  TaskQueue q;
  EXPECT_TRUE(q.Push({TaskKind::kFlush, nullptr, 0}));
  q.Close();
  EXPECT_FALSE(q.Push({TaskKind::kMergeAll, nullptr, 0}))
      << "pushes after Close are rejected";
  MaintenanceTask t;
  EXPECT_TRUE(q.Pop(&t)) << "queued task still handed out";
  EXPECT_FALSE(q.Pop(&t)) << "then Pop reports shutdown";
}

TEST(TaskQueueTest, PopBlocksUntilPush) {
  TaskQueue q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    MaintenanceTask t;
    if (q.Pop(&t)) got = true;
  });
  EXPECT_TRUE(q.Push({TaskKind::kFlush, nullptr, 0}));
  consumer.join();
  EXPECT_TRUE(got);
}

// ---------------------------------------------------------------------------
// MergePolicy
// ---------------------------------------------------------------------------

TEST(MergePolicyTest, FlushWatermarks) {
  Fx fx;
  MergePolicyOptions opt;
  opt.flush_max_buffered_tuples = 5;
  opt.flush_max_buffered_bytes = 1ull << 40;
  opt.flush_max_buffered_deletes = 3;
  MergePolicy policy(opt, fx.env.params());

  EXPECT_EQ(policy.DecideFlush(*fx.table).action, ActionKind::kNone);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx.table->Insert(fx.MakeAuthor()).ok());
  }
  EXPECT_EQ(policy.DecideFlush(*fx.table).action, ActionKind::kNone);
  ASSERT_TRUE(fx.table->Insert(fx.MakeAuthor()).ok());
  EXPECT_EQ(policy.DecideFlush(*fx.table).action, ActionKind::kFlush);

  ASSERT_TRUE(fx.table->FlushBuffer().ok());
  EXPECT_EQ(policy.DecideFlush(*fx.table).action, ActionKind::kNone);
  for (TupleId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(fx.table->Delete(id).ok());
  }
  Decision d = policy.DecideFlush(*fx.table);
  EXPECT_EQ(d.action, ActionKind::kFlush);
  EXPECT_STREQ(d.reason, "buffered-delete watermark");
}

TEST(MergePolicyTest, ByteWatermark) {
  Fx fx;
  MergePolicyOptions opt;
  opt.flush_max_buffered_tuples = 1u << 30;
  opt.flush_max_buffered_bytes = 512;  // a handful of tuples
  MergePolicy policy(opt, fx.env.params());
  while (policy.DecideFlush(*fx.table).action == ActionKind::kNone) {
    ASSERT_TRUE(fx.table->Insert(fx.MakeAuthor()).ok());
    ASSERT_LT(fx.table->buffered_inserts(), 100u) << "watermark never hit";
  }
  EXPECT_GE(fx.table->buffered_bytes(), 512u);
}

TEST(MergePolicyTest, MergeTriggersFollowTheCostModel) {
  Fx fx;
  MergePolicyOptions opt;
  // Selectivity 0 isolates the fracture tax: Cost_frac = Nfrac * Lookup, so
  // deterioration over the merged layout is exactly Nfrac.
  opt.reference_selectivity = 0.0;
  opt.partial_merge_overhead_fraction = 0.5;
  opt.full_merge_deterioration = 100.0;  // off for this test
  MergePolicy policy(opt, fx.env.params());

  EXPECT_EQ(policy.DecideMerge(*fx.table).action, ActionKind::kNone)
      << "nothing to merge on a clean table";

  for (int batch = 0; batch < 2; ++batch) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(fx.table->Insert(fx.MakeAuthor()).ok());
    }
    ASSERT_TRUE(fx.table->FlushBuffer().ok());
  }
  Decision d = policy.DecideMerge(*fx.table);
  EXPECT_EQ(d.action, ActionKind::kMergePartial);
  EXPECT_EQ(d.merge_count, 2u);
  EXPECT_GT(d.overhead_ms, 0.5 * d.predicted_query_ms);

  // With the deterioration knee at 2x, Nfrac = 3 is past it: full merge wins.
  opt.full_merge_deterioration = 2.0;
  MergePolicy strict(opt, fx.env.params());
  Decision full = strict.DecideMerge(*fx.table);
  EXPECT_EQ(full.action, ActionKind::kMergeAll);
  EXPECT_GT(full.predicted_query_ms, 2.0 * full.merged_query_ms);

  MergePolicyOptions off = opt;
  off.merges_enabled = false;
  EXPECT_EQ(MergePolicy(off, fx.env.params()).DecideMerge(*fx.table).action,
            ActionKind::kNone);
}

// ---------------------------------------------------------------------------
// MaintenanceManager, synchronous mode (deterministic)
// ---------------------------------------------------------------------------

TEST(MaintenanceManagerTest, WatermarkTriggeredFlush) {
  Fx fx;
  MaintenanceManagerOptions opt;
  opt.policy = NoMergePolicy();
  opt.policy.flush_max_buffered_tuples = 10;
  MaintenanceManager mgr(&fx.env, opt);
  mgr.Register(fx.table.get());

  std::vector<Tuple> extras;
  for (int i = 0; i < 9; ++i) {
    extras.push_back(fx.MakeAuthor());
    ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
    mgr.NotifyWrite(fx.table.get());
  }
  EXPECT_EQ(mgr.queued_tasks(), 0u) << "below watermark: no task";
  EXPECT_EQ(mgr.RunPending(), 0u);

  extras.push_back(fx.MakeAuthor());
  ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
  mgr.NotifyWrite(fx.table.get());
  EXPECT_EQ(mgr.queued_tasks(), 1u);
  EXPECT_EQ(fx.table->num_fractures(), 1u) << "sync mode: nothing ran yet";

  EXPECT_EQ(mgr.RunPending(), 1u);
  EXPECT_TRUE(mgr.last_error().ok());
  EXPECT_EQ(fx.table->buffered_inserts(), 0u);
  EXPECT_EQ(fx.table->num_fractures(), 2u);
  EXPECT_EQ(mgr.stats().flushes, 1u);
  EXPECT_GT(mgr.stats().flush_sim_ms, 0.0);

  std::string v = fx.gen->PopularInstitution();
  std::vector<PtqMatch> out;
  ASSERT_TRUE(fx.table->QueryPtq(v, 0.05, &out).ok());
  auto oracle = fx.Oracle(v, 0.05, {}, extras);
  EXPECT_EQ(out.size(), oracle.size());
}

TEST(MaintenanceManagerTest, DuplicateNotifiesEnqueueOneTask) {
  Fx fx;
  MaintenanceManagerOptions opt;
  opt.policy = NoMergePolicy();
  opt.policy.flush_max_buffered_tuples = 5;
  MaintenanceManager mgr(&fx.env, opt);
  mgr.Register(fx.table.get());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fx.table->Insert(fx.MakeAuthor()).ok());
    mgr.NotifyWrite(fx.table.get());
  }
  EXPECT_EQ(mgr.queued_tasks(), 1u) << "deduplicated per table";
  EXPECT_EQ(mgr.RunPending(), 1u);
  EXPECT_EQ(fx.table->buffered_inserts(), 0u)
      << "the one flush drains everything accumulated";
}

TEST(MaintenanceManagerTest, PolicyTriggeredPartialMerge) {
  Fx fx;
  MaintenanceManagerOptions opt;
  opt.policy.flush_max_buffered_tuples = 20;
  opt.policy.reference_selectivity = 0.0;  // isolate the fracture tax
  opt.policy.partial_merge_overhead_fraction = 0.5;
  opt.policy.full_merge_deterioration = 100.0;  // keep MergeAll out of this test
  opt.policy.partial_merge_fanin = 4;
  MaintenanceManager mgr(&fx.env, opt);
  mgr.Register(fx.table.get());

  // Two watermark flushes accumulate two delta fractures; the follow-up
  // policy check after the second flush must fold them.
  std::vector<Tuple> extras;
  for (int i = 0; i < 40; ++i) {
    extras.push_back(fx.MakeAuthor());
    ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
    mgr.NotifyWrite(fx.table.get());
    mgr.RunPending();
  }
  EXPECT_TRUE(mgr.last_error().ok());
  EXPECT_GE(mgr.stats().flushes, 2u);
  EXPECT_GE(mgr.stats().partial_merges, 1u);
  EXPECT_EQ(mgr.stats().full_merges, 0u);
  EXPECT_EQ(fx.table->num_fractures(), 2u) << "main + the folded delta";

  std::string v = fx.gen->PopularInstitution();
  std::vector<PtqMatch> out;
  ASSERT_TRUE(fx.table->QueryPtq(v, 0.05, &out).ok());
  auto oracle = fx.Oracle(v, 0.05, {}, extras);
  ASSERT_EQ(out.size(), oracle.size());
  for (const auto& m : out) {
    ASSERT_TRUE(oracle.contains(m.id));
    EXPECT_NEAR(oracle[m.id], m.confidence, 1e-6);
  }
}

TEST(MaintenanceManagerTest, MergeAllPastDeteriorationThreshold) {
  Fx fx;
  MaintenanceManagerOptions opt;
  opt.policy.flush_max_buffered_tuples = 20;
  opt.policy.reference_selectivity = 0.0;
  // Fraction 1.0 disables partial merges (overhead can never *exceed* the
  // whole predicted cost when selectivity is 0), so deterioration alone
  // drives maintenance.
  opt.policy.partial_merge_overhead_fraction = 1.0;
  opt.policy.full_merge_deterioration = 2.5;  // Nfrac > 2.5 => full merge
  MaintenanceManager mgr(&fx.env, opt);
  mgr.Register(fx.table.get());

  std::vector<Tuple> extras;
  for (int i = 0; i < 60; ++i) {  // three watermark flushes
    extras.push_back(fx.MakeAuthor());
    ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
    mgr.NotifyWrite(fx.table.get());
    mgr.RunPending();
  }
  // Flush 1: Nfrac=2 (ratio 2 < 2.5, no merge). Flush 2: Nfrac=3, past the
  // knee -> MergeAll -> Nfrac=1. Flush 3: Nfrac=2 again.
  EXPECT_TRUE(mgr.last_error().ok());
  EXPECT_EQ(mgr.stats().full_merges, 1u);
  EXPECT_EQ(mgr.stats().partial_merges, 0u);
  EXPECT_EQ(fx.table->num_fractures(), 2u);
  EXPECT_GT(mgr.stats().merge_sim_ms, 0.0);

  std::string v = fx.gen->PopularInstitution();
  std::vector<PtqMatch> out;
  ASSERT_TRUE(fx.table->QueryPtq(v, 0.05, &out).ok());
  auto oracle = fx.Oracle(v, 0.05, {}, extras);
  ASSERT_EQ(out.size(), oracle.size());
}

TEST(MaintenanceManagerTest, ForcedScheduleAndDeleteFlush) {
  Fx fx;
  MaintenanceManagerOptions opt;
  opt.policy = NoMergePolicy();
  opt.policy.flush_max_buffered_deletes = 4;
  MaintenanceManager mgr(&fx.env, opt);
  mgr.Register(fx.table.get());

  for (TupleId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(fx.table->Delete(id).ok());
    mgr.NotifyWrite(fx.table.get());
  }
  EXPECT_EQ(mgr.RunPending(), 1u);
  EXPECT_EQ(fx.table->buffered_deletes(), 0u) << "delete set persisted";

  // ScheduleMergeAll ignores watermarks (and the merges_enabled switch, which
  // only gates *policy-decided* merges).
  Tuple extra = fx.MakeAuthor();
  ASSERT_TRUE(fx.table->Insert(extra).ok());
  mgr.ScheduleMergeAll(fx.table.get());
  EXPECT_EQ(mgr.RunPending(), 1u);
  EXPECT_TRUE(mgr.last_error().ok());
  EXPECT_EQ(fx.table->num_fractures(), 1u);
  EXPECT_EQ(fx.table->buffered_inserts(), 0u)
      << "MergeAll folds the buffer in too";

  std::string v = fx.gen->PopularInstitution();
  std::vector<PtqMatch> out;
  ASSERT_TRUE(fx.table->QueryPtq(v, 0.05, &out).ok());
  auto oracle = fx.Oracle(v, 0.05, {1, 2, 3, 4}, {extra});
  EXPECT_EQ(out.size(), oracle.size());
}

// ---------------------------------------------------------------------------
// Threaded smoke test: correct query results while background merges run
// ---------------------------------------------------------------------------

TEST(MaintenanceManagerTest, ThreadedQueriesStayCorrectDuringMerges) {
  Fx fx(1000, 7);
  MaintenanceManagerOptions opt;
  opt.num_workers = 2;
  opt.policy.flush_max_buffered_tuples = 25;
  opt.policy.reference_selectivity = 0.0;  // merge eagerly: maximum churn
  opt.policy.partial_merge_overhead_fraction = 0.5;
  opt.policy.full_merge_deterioration = 4.0;
  MaintenanceManager mgr(&fx.env, opt);
  mgr.Register(fx.table.get());

  std::string v = fx.gen->PopularInstitution();

  // Writer: the test thread streams inserts and pokes the manager, querying
  // every few tuples while the workers flush and merge underneath. Every
  // inserted tuple must be visible immediately (buffer) and stay visible
  // through every flush/partial-merge/full-merge install. The WaitIdle at
  // each round boundary makes the flush count deterministic (>= 1 per round)
  // without serializing the queries *inside* a round against the workers.
  std::vector<Tuple> extras;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 50; ++i) {
      extras.push_back(fx.MakeAuthor());
      ASSERT_TRUE(fx.table->Insert(extras.back()).ok());
      mgr.NotifyWrite(fx.table.get());
      if (i % 10 == 9) {
        auto oracle = fx.Oracle(v, 0.05, {}, extras);
        std::vector<PtqMatch> out;
        ASSERT_TRUE(fx.table->QueryPtq(v, 0.05, &out).ok());
        ASSERT_EQ(out.size(), oracle.size())
            << "round " << round << " insert " << i;
        for (const auto& m : out) {
          ASSERT_TRUE(oracle.contains(m.id));
          ASSERT_NEAR(oracle[m.id], m.confidence, 1e-6);
        }
      }
    }
    mgr.WaitIdle();
  }
  EXPECT_TRUE(mgr.last_error().ok());
  MaintenanceStats stats = mgr.stats();
  EXPECT_GE(stats.flushes, 4u) << "watermark flushes ran in the background";
  EXPECT_GE(stats.partial_merges + stats.full_merges, 1u)
      << "at least one background merge overlapped the queries";

  // Final state: everything visible, exactly once.
  auto oracle = fx.Oracle(v, 0.05, {}, extras);
  std::vector<PtqMatch> out;
  ASSERT_TRUE(fx.table->QueryPtq(v, 0.05, &out).ok());
  ASSERT_EQ(out.size(), oracle.size());

  mgr.Stop();
  mgr.Unregister(fx.table.get());
}

TEST(MaintenanceManagerTest, StopDropsQueuedSyncTasksWithoutHanging) {
  Fx fx;
  MaintenanceManagerOptions opt;
  opt.policy = NoMergePolicy();
  opt.policy.flush_max_buffered_tuples = 1;
  MaintenanceManager mgr(&fx.env, opt);
  mgr.Register(fx.table.get());
  ASSERT_TRUE(fx.table->Insert(fx.MakeAuthor()).ok());
  mgr.NotifyWrite(fx.table.get());
  EXPECT_EQ(mgr.queued_tasks(), 1u);
  mgr.Stop();           // never ran RunPending
  mgr.WaitIdle();       // must not hang
  mgr.Unregister(fx.table.get());
  EXPECT_EQ(mgr.stats().flushes, 0u);
}

}  // namespace
}  // namespace upi::maintenance
