#!/usr/bin/env python3
"""Repo-specific invariant lint, CI-gated (see .github/workflows/ci.yml).

Machine-checks the conventions the engine relies on but a compiler won't
enforce:

  raw-sync      std::mutex / std::shared_mutex / std::condition_variable /
                std::recursive_mutex / std::timed_mutex — and RAII guards
                instantiated over them (lock_guard<std::mutex>, ...) — are
                banned outside src/sync/. Every lock must be a rank-carrying
                sync::Mutex / sync::SharedMutex / sync::CondVar so the
                UPI_SYNC_CHECKS acquisition checker sees it; one unwrapped
                mutex is a hole in the deadlock-freedom argument.

  assert        assert( in src/ is banned (static_assert is fine). The
                default build is RelWithDebInfo with NDEBUG, which compiles
                asserts out — an invariant worth stating is worth enforcing
                in every build type, which is UPI_CHECK (common/check.h).

  naked-new     new / delete expressions in src/ are banned outside smart-
                pointer initialization (a line, or continuation of a line,
                mentioning unique_ptr / shared_ptr / make_unique /
                make_shared). Placement of `= delete` and deleted operators
                are fine.

Zero third-party dependencies; line-based on purpose (simple enough to
audit, and the few multi-line cases are handled by the continuation rule).
Exit status 0 = clean, 1 = findings (printed one per line as
path:line: [rule] message).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

RAW_SYNC = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|condition_variable"
    r"(_any)?)\b"
)
RAW_GUARD = re.compile(r"\b(lock_guard|unique_lock|shared_lock|scoped_lock)\s*<\s*std::")
ASSERT = re.compile(r"(?<![_\w])assert\s*\(")
NEW_EXPR = re.compile(r"(?<![_\w.:])new\b(?!\s*\()")  # `new T`, not placement-new idioms we don't use
DELETE_EXPR = re.compile(r"(?<![_\w.:])delete\b(\s*\[\s*\])?\s")
SMART = re.compile(r"unique_ptr|shared_ptr|make_unique|make_shared")


def strip_comments_and_strings(line: str, in_block: bool) -> tuple[str, bool]:
    """Blanks out string/char literals, // and /* */ comment content."""
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote)
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block


def lint_file(path: Path) -> list[str]:
    findings = []
    rel = path.relative_to(REPO)
    in_sync = rel.parts[:2] == ("src", "sync")
    in_block = False
    prev_code = ""
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        code, in_block = strip_comments_and_strings(raw, in_block)

        def report(rule: str, msg: str) -> None:
            findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

        if not in_sync:
            if RAW_SYNC.search(code):
                report(
                    "raw-sync",
                    "raw std sync primitive; use sync::Mutex / "
                    "sync::SharedMutex / sync::CondVar (src/sync/sync.h)",
                )
            if RAW_GUARD.search(code):
                report(
                    "raw-sync",
                    "lock guard over a raw std mutex type; guard a "
                    "sync:: wrapper instead",
                )
        if ASSERT.search(code) and "static_assert" not in code:
            report("assert", "assert() compiles out under NDEBUG; use UPI_CHECK")
        if NEW_EXPR.search(code):
            # Allowed only as smart-pointer initialization; a wrapped
            # expression carries the unique_ptr/... on the previous line.
            if not (SMART.search(code) or SMART.search(prev_code)):
                report("naked-new", "naked new; own it with a smart pointer")
        if DELETE_EXPR.search(code) and "= delete" not in code:
            report("naked-new", "naked delete; owning type should manage this")
        if code.strip():
            prev_code = code
    return findings


def main() -> int:
    files = sorted(
        p for p in SRC.rglob("*") if p.suffix in (".h", ".cc") and p.is_file()
    )
    if not files:
        print("lint_invariants: no sources found under src/", file=sys.stderr)
        return 1
    findings = []
    for f in files:
        findings.extend(lint_file(f))
    for line in findings:
        print(line)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
