// Figure 10: Fractured UPI runtime, real vs. cost-model estimate, over 30
// insert batches with a merge after every 10 — the Section 6.2 validation.
// Expected shape: runtime climbs linearly with the fracture count, drops back
// after each merge, and the model tracks the measured curve.
#include "bench_util.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(false);
  const double qt = 0.1, cutoff = 0.1;
  const int batches = static_cast<int>(flags::GetInt64("batches", 30));
  const int merge_every = static_cast<int>(flags::GetInt64("merge_every", 10));

  storage::DbEnv env(32ull << 20, DeviceFromFlags());
  core::FracturedUpi fractured(&env, "author",
                               datagen::DblpGenerator::AuthorSchema(),
                               AuthorUpiOptions(cutoff), {});
  CheckOk(fractured.BuildMain(d.authors));
  catalog::TupleId next_id = d.cfg.num_authors + 1;
  // Batches are 10% of the *original* table so 30 batches are tractable.
  const size_t insert_per_batch = d.authors.size() / 10;

  PrintTitle(
      "Figure 10: Fractured UPI — real vs estimated Q1 runtime (simulated "
      "seconds), merge every 10 batches");
  std::printf("# authors=%zu  value=%s  QT=C=0.1\n", d.authors.size(),
              d.popular_institution.c_str());
  std::printf("%-7s %9s %12s %7s %7s\n", "batch", "real[s]", "estimated[s]",
              "Nfrac", "event");

  auto measure = [&](int batch, const char* event) {
    QueryCost real = RunCold(&env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(fractured.QueryPtq(d.popular_institution, qt, &out));
      return out.size();
    });
    core::CostModel model(env.params(), core::TableStats::Of(fractured));
    double est_ms = model.FracturedQueryMs(
        fractured.EstimateSelectivity(d.popular_institution, qt));
    std::printf("%-7d %9.3f %12.3f %7zu %7s\n", batch, real.sim_ms / 1000.0,
                est_ms / 1000.0, fractured.num_fractures(), event);
  };

  measure(0, "");
  for (int batch = 1; batch <= batches; ++batch) {
    for (size_t i = 0; i < insert_per_batch; ++i) {
      CheckOk(fractured.Insert(d.gen->MakeAuthor(next_id++)));
    }
    CheckOk(fractured.FlushBuffer());
    const char* event = "";
    if (batch % merge_every == 0) {
      CheckOk(fractured.MergeAll());
      event = "merge";
    }
    measure(batch, event);
  }
  return 0;
}
