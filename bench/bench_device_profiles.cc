// Device profiles: the same engine, the same data, the same queries — priced
// and executed on the paper's 10k-RPM spinning disk and on a flash profile
// (sim/device_profile.h), side by side.
//
// Four sections:
//
//   A. Plan choice. A scattered secondary probe (country over an
//      institution-clustered UPI) is planned on both profiles. On the
//      spinning disk the tailored sweep saturates into a full scan (hundreds
//      of multi-ms region seeks), so the planner picks heap-scan; on flash
//      the same regions cost ~20us each and the secondary plan wins. The
//      EXPLAIN pair is printed verbatim — the flip is discovered by the cost
//      model, not special-cased. A self-check re-prices every candidate with
//      the legacy CostParams planner and demands bit-identical predictions
//      from the SpinningDisk-profile planner, and runs one real query on a
//      CostParams-constructed env vs a SpinningDisk-profile env demanding
//      bit-identical simulated time.
//
//   B. Merge schedule. The cost-model maintenance policy runs the same
//      insert/query workload on both profiles. On flash the fracture tax
//      (Costinit + H*Tseek per probed fracture) collapses ~100x while the
//      transfer half of query cost only shrinks ~7x, so the same thresholds
//      fire later: merges defer, fracture counts ride higher, and merge I/O
//      (with its GC write surcharge) is avoided — with no flash-specific
//      policy rule.
//
//   C. Throughput. Closed-loop ingest (watermark flushes + model merges,
//      synchronous maintenance so simulated time is deterministic) and a
//      set of cold queries, timed in simulated ms per profile. The flash
//      profile must ingest >= 1.5x the spinning disk's tuples/sim-second
//      (cheap writes + no rotational barrier, minus the GC surcharge).
//
//   D. --wal adds the durability comparison: multi-client ingest under
//      commit-per-sync vs group commit, once per profile, in realtime mode
//      (simulated latencies become real sleeps). Group commit exists to
//      amortize the rotational commit barrier; flash's program barrier is
//      ~100x smaller, so the group-over-commit advantage shrinks. Wall-clock
//      based, hence informational (no gate).
//
//   ./bench_device_profiles [--smoke] [--wal] [--seed=42]
//                           [--json=BENCH_device_profiles.json]
//
// --smoke runs A..C at reduced sizes and exits non-zero unless (1) the
// planner flips between profiles, (2) every spinning-disk row is
// bit-identical to the legacy CostParams pricing, and (3) flash ingest
// reaches the 1.5x bar. The full run applies the same gates.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "bench_util.h"
#include "engine/access_path.h"
#include "engine/database.h"
#include "engine/planner.h"
#include "engine/session.h"
#include "maintenance/manager.h"
#include "sim/device_profile.h"

using namespace upi;
using namespace upi::bench;

namespace {

struct Gate {
  int checks = 0;
  int passed = 0;
  void Check(bool ok, const char* what) {
    ++checks;
    passed += ok ? 1 : 0;
    if (!ok) std::printf("GATE FAIL: %s\n", what);
  }
};

const char* ProfileName(const sim::DeviceProfile& p) {
  return p.kind == sim::DeviceKind::kSpinningDisk ? "hdd" : "ssd";
}

// --------------------------------------------------------------------------
// Section A: plan choice
// --------------------------------------------------------------------------

void RunPlanChoice(Gate* gate, JsonWriter* json, bool smoke) {
  // The flip fixture: many institutions scatter each country's matches
  // across many clustered regions (see cost_model_test.cc,
  // DeviceProfilePlanFlipTest).
  datagen::DblpConfig cfg;
  cfg.num_authors = smoke ? 30000 : 60000;
  cfg.num_institutions = smoke ? 6000 : 12000;
  cfg.seed = static_cast<uint64_t>(flags::GetInt64("seed", 7));
  datagen::DblpGenerator gen(cfg);
  std::vector<catalog::Tuple> authors = gen.GenerateAuthors();
  std::string value = datagen::FindValueWithApproxCount(
      authors, datagen::AuthorCols::kCountry, cfg.num_authors / 33);
  const double qt = 0.05;

  storage::DbEnv env(256ull << 20);
  core::UpiOptions opt;
  opt.cluster_column = datagen::AuthorCols::kInstitution;
  auto upi = core::Upi::Build(&env, "authors",
                              datagen::DblpGenerator::AuthorSchema(), opt,
                              {datagen::AuthorCols::kCountry}, authors)
                 .ValueOrDie();
  engine::UpiAccessPath path(upi.get());

  PrintTitle("A. Plan choice: one secondary probe, two devices");
  std::printf("# authors=%zu institutions=%zu value=%s qt=%.2f\n",
              authors.size(), static_cast<size_t>(cfg.num_institutions),
              value.c_str(), qt);

  engine::QueryPlanner hdd(&path, sim::DeviceProfile::SpinningDisk());
  engine::QueryPlanner ssd(&path, sim::DeviceProfile::Ssd());
  engine::Plan on_hdd =
      hdd.PlanSecondary(datagen::AuthorCols::kCountry, value, qt);
  engine::Plan on_ssd =
      ssd.PlanSecondary(datagen::AuthorCols::kCountry, value, qt);
  std::printf("\n[hdd]\n%s\n[ssd]\n%s\n", on_hdd.Explain().c_str(),
              on_ssd.Explain().c_str());
  gate->Check(on_hdd.kind != on_ssd.kind,
              "planner must flip between profiles");
  gate->Check(on_hdd.kind == engine::PlanKind::kHeapScan,
              "spinning disk must choose heap-scan on the scattered probe");
  gate->Check(on_ssd.kind == engine::PlanKind::kSecondaryFirstPointer ||
                  on_ssd.kind == engine::PlanKind::kSecondaryTailored,
              "flash must choose a secondary plan on the scattered probe");
  QueryCost row;
  row.sim_ms = on_hdd.predicted_ms;
  json->AddRow("plan hdd " + std::string(engine::PlanKindName(on_hdd.kind)),
               row);
  row.sim_ms = on_ssd.predicted_ms;
  json->AddRow("plan ssd " + std::string(engine::PlanKindName(on_ssd.kind)),
               row);

  // Spinning-disk bit-identity, prediction side: every candidate of every
  // query shape, legacy CostParams pricing vs the SpinningDisk profile.
  engine::QueryPlanner legacy(&path, sim::CostParams{});
  bool identical = true;
  auto same = [&identical](const engine::Plan& a, const engine::Plan& b) {
    identical = identical && a.kind == b.kind &&
                a.predicted_ms == b.predicted_ms &&
                a.candidates().size() == b.candidates().size();
    for (size_t i = 0;
         identical && i < a.candidates().size() && i < b.candidates().size();
         ++i) {
      identical = a.candidates()[i].predicted_ms ==
                  b.candidates()[i].predicted_ms;
    }
  };
  same(legacy.PlanSecondary(datagen::AuthorCols::kCountry, value, qt), on_hdd);
  same(legacy.PlanPtq(value, 0.3), hdd.PlanPtq(value, 0.3));
  same(legacy.PlanTopK(value, 10), hdd.PlanTopK(value, 10));
  gate->Check(identical,
              "spinning-profile predictions must be bit-identical to legacy");

  // Spinning-disk bit-identity, execution side: the same cold query on a
  // CostParams-constructed env and a SpinningDisk-profile env.
  auto measure = [&](storage::DbEnv* e) {
    core::UpiOptions o;
    o.cluster_column = datagen::AuthorCols::kInstitution;
    auto u = core::Upi::Build(e, "authors",
                              datagen::DblpGenerator::AuthorSchema(), o,
                              {datagen::AuthorCols::kCountry}, authors)
                 .ValueOrDie();
    return RunCold(e, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(u->QueryBySecondary(datagen::AuthorCols::kCountry, value, qt,
                                  core::SecondaryAccessMode::kTailored, &out));
      return out.size();
    });
  };
  storage::DbEnv legacy_env(256ull << 20, sim::CostParams{});
  storage::DbEnv profile_env(256ull << 20, sim::DeviceProfile::SpinningDisk());
  QueryCost on_legacy = measure(&legacy_env);
  QueryCost on_profile = measure(&profile_env);
  std::printf("spinning bit-identity: legacy env %.6f sim-ms, profile env "
              "%.6f sim-ms, predictions %s\n",
              on_legacy.sim_ms, on_profile.sim_ms,
              identical ? "identical" : "DIFFER");
  gate->Check(on_legacy.sim_ms == on_profile.sim_ms &&
                  on_legacy.rows == on_profile.rows,
              "spinning-profile execution must be bit-identical to legacy");
}

// --------------------------------------------------------------------------
// Section B: merge schedule
// --------------------------------------------------------------------------

struct MergeScheduleRow {
  uint64_t flushes = 0, partials = 0, fulls = 0;
  size_t final_nfrac = 0;
  size_t max_nfrac = 0;
  double merge_sim_ms = 0.0;
  double total_sim_ms = 0.0;
  size_t rows = 0;
};

MergeScheduleRow RunMergeSchedule(const DblpData& d,
                                  const sim::DeviceProfile& profile,
                                  int rounds, int queries_per_round) {
  storage::DbEnv env(32ull << 20, profile);
  core::FracturedUpi fractured(&env, "author",
                               datagen::DblpGenerator::AuthorSchema(),
                               AuthorUpiOptions(0.1), {});
  CheckOk(fractured.BuildMain(d.authors));

  maintenance::MergePolicyOptions policy;
  policy.flush_max_buffered_tuples = d.authors.size() / 25;
  policy.reference_value = d.popular_institution;
  policy.reference_qt = 0.1;
  maintenance::MaintenanceManagerOptions mopt;
  mopt.num_workers = 0;  // synchronous: simulated time stays deterministic
  mopt.policy = policy;
  maintenance::MaintenanceManager mgr(&env, mopt);
  mgr.Register(&fractured);

  datagen::DblpGenerator gen(d.cfg);  // same seed: identical insert stream
  (void)gen.GenerateAuthors();
  catalog::TupleId next_id = d.cfg.num_authors + 1;
  const size_t batch = d.authors.size() / 20;

  MergeScheduleRow r;
  sim::StatsWindow total(env.disk());
  for (int round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < batch; ++i) {
      CheckOk(fractured.Insert(gen.MakeAuthor(next_id++)));
      mgr.NotifyWrite(&fractured);
      mgr.RunPending();
      r.max_nfrac = std::max(r.max_nfrac, fractured.num_fractures());
    }
    for (int q = 0; q < queries_per_round; ++q) {
      QueryCost cost = RunCold(&env, [&]() -> size_t {
        std::vector<core::PtqMatch> out;
        CheckOk(fractured.QueryPtq(d.popular_institution, 0.1, &out));
        return out.size();
      });
      r.rows += cost.rows;
    }
  }
  CheckOk(mgr.last_error());
  r.total_sim_ms = total.ElapsedMs();
  maintenance::MaintenanceStats stats = mgr.stats();
  r.flushes = stats.flushes;
  r.partials = stats.partial_merges;
  r.fulls = stats.full_merges;
  r.merge_sim_ms = stats.merge_sim_ms;
  r.final_nfrac = fractured.num_fractures();
  return r;
}

void RunMergeSection(Gate* gate, JsonWriter* json, bool smoke) {
  DblpData d = MakeDblp(/*with_publications=*/false);
  const int rounds = smoke ? 6 : 12;
  const int queries = 4;

  std::printf("\n");
  PrintTitle("B. Merge schedule: same policy thresholds, two devices");
  std::printf("# %d rounds x (%zu inserts + %d cold PTQs); model policy, "
              "identical thresholds\n",
              rounds, d.authors.size() / 20, queries);
  std::printf("%-6s %6s %4s %4s %7s %8s %10s %10s %9s\n", "device", "flush",
              "pm", "fm", "nfrac", "maxfrac", "merge[s]", "total[s]", "rows");

  MergeScheduleRow rows[2];
  sim::DeviceProfile profiles[2] = {sim::DeviceProfile::SpinningDisk(),
                                    sim::DeviceProfile::Ssd()};
  for (int i = 0; i < 2; ++i) {
    rows[i] = RunMergeSchedule(d, profiles[i], rounds, queries);
    std::printf("%-6s %6llu %4llu %4llu %7zu %8zu %10.1f %10.1f %9zu\n",
                ProfileName(profiles[i]),
                static_cast<unsigned long long>(rows[i].flushes),
                static_cast<unsigned long long>(rows[i].partials),
                static_cast<unsigned long long>(rows[i].fulls),
                rows[i].final_nfrac, rows[i].max_nfrac,
                rows[i].merge_sim_ms / 1000.0, rows[i].total_sim_ms / 1000.0,
                rows[i].rows);
    QueryCost row;
    row.sim_ms = rows[i].total_sim_ms;
    row.rows = rows[i].rows;
    char config[96];
    std::snprintf(config, sizeof(config),
                  "merge-schedule %s pm=%llu fm=%llu nfrac=%zu",
                  ProfileName(profiles[i]),
                  static_cast<unsigned long long>(rows[i].partials),
                  static_cast<unsigned long long>(rows[i].fulls),
                  rows[i].final_nfrac);
    json->AddRow(config, row);
  }
  std::printf("# flash defers: %llu merges vs %llu on the spinning disk; "
              "fracture count rides to %zu vs %zu\n",
              static_cast<unsigned long long>(rows[1].partials +
                                              rows[1].fulls),
              static_cast<unsigned long long>(rows[0].partials +
                                              rows[0].fulls),
              rows[1].max_nfrac, rows[0].max_nfrac);
  gate->Check(rows[0].rows == rows[1].rows,
              "both devices must return identical query results");
  gate->Check(rows[1].partials + rows[1].fulls <
                  rows[0].partials + rows[0].fulls,
              "flash must schedule fewer merges at the same thresholds");
  gate->Check(rows[1].max_nfrac >= rows[0].max_nfrac,
              "flash must tolerate at least as many fractures");
}

// --------------------------------------------------------------------------
// Section C: ingest/query throughput in simulated time
// --------------------------------------------------------------------------

struct ThroughputRow {
  double ingest_sim_ms = 0.0;
  double ingest_tuples_per_s = 0.0;  // per simulated second
  double query_sim_ms = 0.0;
  size_t rows = 0;
};

ThroughputRow RunThroughput(const DblpData& d,
                            const sim::DeviceProfile& profile) {
  storage::DbEnv env(32ull << 20, profile);
  core::FracturedUpi fractured(&env, "author",
                               datagen::DblpGenerator::AuthorSchema(),
                               AuthorUpiOptions(0.1), {});
  CheckOk(fractured.BuildMain(d.authors));

  maintenance::MergePolicyOptions policy;
  policy.flush_max_buffered_tuples = d.authors.size() / 25;
  policy.reference_value = d.popular_institution;
  maintenance::MaintenanceManagerOptions mopt;
  mopt.num_workers = 0;
  mopt.policy = policy;
  maintenance::MaintenanceManager mgr(&env, mopt);
  mgr.Register(&fractured);

  datagen::DblpGenerator gen(d.cfg);
  (void)gen.GenerateAuthors();
  catalog::TupleId next_id = d.cfg.num_authors + 1;
  const size_t ingest = d.authors.size() / 2;

  ThroughputRow r;
  {
    sim::StatsWindow window(env.disk());
    for (size_t i = 0; i < ingest; ++i) {
      CheckOk(fractured.Insert(gen.MakeAuthor(next_id++)));
      mgr.NotifyWrite(&fractured);
      mgr.RunPending();
    }
    CheckOk(fractured.FlushBuffer());
    env.pool()->FlushAll();
    r.ingest_sim_ms = window.ElapsedMs();
  }
  CheckOk(mgr.last_error());
  r.ingest_tuples_per_s =
      static_cast<double>(ingest) / (r.ingest_sim_ms / 1000.0);
  for (int q = 0; q < 8; ++q) {
    const std::string& value =
        q % 2 == 0 ? d.popular_institution : d.selective_institution;
    QueryCost cost = RunCold(&env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(fractured.QueryPtq(value, 0.1, &out));
      return out.size();
    });
    r.query_sim_ms += cost.sim_ms;
    r.rows += cost.rows;
  }
  return r;
}

void RunThroughputSection(Gate* gate, JsonWriter* json) {
  DblpData d = MakeDblp(/*with_publications=*/false);

  std::printf("\n");
  PrintTitle("C. Ingest/query throughput in simulated time");
  std::printf("# %zu base tuples, %zu ingested (watermark flushes + model "
              "merges), 8 cold PTQs\n",
              d.authors.size(), d.authors.size() / 2);
  std::printf("%-6s %12s %14s %11s %9s\n", "device", "ingest[s]",
              "tuples/sim-s", "query[s]", "rows");

  ThroughputRow rows[2];
  sim::DeviceProfile profiles[2] = {sim::DeviceProfile::SpinningDisk(),
                                    sim::DeviceProfile::Ssd()};
  for (int i = 0; i < 2; ++i) {
    rows[i] = RunThroughput(d, profiles[i]);
    std::printf("%-6s %12.1f %14.0f %11.1f %9zu\n", ProfileName(profiles[i]),
                rows[i].ingest_sim_ms / 1000.0, rows[i].ingest_tuples_per_s,
                rows[i].query_sim_ms / 1000.0, rows[i].rows);
    QueryCost row;
    row.sim_ms = rows[i].ingest_sim_ms;
    row.rows = static_cast<size_t>(rows[i].ingest_tuples_per_s);
    json->AddRow(std::string("ingest ") + ProfileName(profiles[i]), row);
    row.sim_ms = rows[i].query_sim_ms;
    row.rows = rows[i].rows;
    json->AddRow(std::string("query ") + ProfileName(profiles[i]), row);
  }
  double speedup =
      rows[1].ingest_tuples_per_s / std::max(rows[0].ingest_tuples_per_s, 1.0);
  std::printf("# flash ingests %.1fx the spinning disk's tuples per simulated "
              "second\n",
              speedup);
  gate->Check(rows[0].rows == rows[1].rows,
              "both devices must return identical query results");
  gate->Check(speedup >= 1.5, "flash ingest must reach 1.5x spinning disk");
}

// --------------------------------------------------------------------------
// Section D: --wal durability comparison (informational, wall-clock)
// --------------------------------------------------------------------------

catalog::Tuple CloneWithId(const catalog::Tuple& src, catalog::TupleId id) {
  std::vector<catalog::Value> values(src.values());
  return catalog::Tuple(id, src.existence(), std::move(values));
}

double RunWalIngest(const DblpData& d, const sim::DeviceProfile& profile,
                    wal::WalMode mode, const char* wal_dir, size_t nclients,
                    size_t ops_per_client) {
  engine::DatabaseOptions opts;
  opts.device = profile;
  opts.pool_bytes = 256ull << 20;
  opts.maintenance.num_workers = 1;
  opts.wal_dir = wal_dir;
  opts.wal_mode = mode;
  engine::Database db(opts);
  engine::Table* stream =
      db.CreateFracturedTable("author_stream",
                              datagen::DblpGenerator::AuthorSchema(),
                              AuthorUpiOptions(0.1), {}, d.authors)
          .ValueOrDie();
  db.env()->disk()->SetRealtimeScale(flags::GetDouble("sleep_us_per_ms",
                                                      1000.0));

  std::atomic<catalog::TupleId> next_id{1u << 30};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (size_t t = 0; t < nclients; ++t) {
    clients.emplace_back([&, t] {
      engine::Session session(&db);
      for (size_t op = 0; op < ops_per_client; ++op) {
        const catalog::Tuple& src =
            d.authors[(t * ops_per_client + op) % d.authors.size()];
        auto fut = session.SubmitInsert(
            *stream, CloneWithId(src, next_id.fetch_add(1)));
        CheckOk(fut.get().status());
      }
    });
  }
  for (std::thread& c : clients) c.join();
  auto t1 = std::chrono::steady_clock::now();
  db.env()->disk()->SetRealtimeScale(0.0);
  double wall_s = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(nclients * ops_per_client) / wall_s;
}

void RunWalSection(JsonWriter* json) {
  DblpData d = MakeDblp(/*with_publications=*/false);
  d.authors.resize(d.authors.size() / 2);
  const size_t nclients = static_cast<size_t>(flags::GetInt64("clients", 8));
  const size_t ops = static_cast<size_t>(flags::GetInt64("ops", 60));

  std::printf("\n");
  PrintTitle("D. Group commit advantage per device (--wal, wall-clock)");
  std::printf("# %zu clients x %zu inserts, realtime mode; group/commit "
              "ratio is what the rotational barrier is worth\n",
              nclients, ops);
  std::printf("%-6s %14s %14s %12s\n", "device", "commit[ops/s]",
              "group[ops/s]", "group-gain");

  sim::DeviceProfile profiles[2] = {sim::DeviceProfile::SpinningDisk(),
                                    sim::DeviceProfile::Ssd()};
  double gains[2] = {0.0, 0.0};
  auto run_mode = [&](const sim::DeviceProfile& profile, wal::WalMode mode) {
    char dir_tmpl[] = "/tmp/upi_bench_devwal_XXXXXX";
    const char* wal_dir = ::mkdtemp(dir_tmpl);
    if (wal_dir == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::exit(1);
    }
    double ops_per_s = RunWalIngest(d, profile, mode, wal_dir, nclients, ops);
    std::filesystem::remove_all(wal_dir);
    return ops_per_s;
  };
  for (int i = 0; i < 2; ++i) {
    double commit_ops = run_mode(profiles[i], wal::WalMode::kCommit);
    double group_ops = run_mode(profiles[i], wal::WalMode::kGroup);
    gains[i] = commit_ops > 0 ? group_ops / commit_ops : 0.0;
    std::printf("%-6s %14.0f %14.0f %11.2fx\n", ProfileName(profiles[i]),
                commit_ops, group_ops, gains[i]);
    QueryCost row;
    row.wall_ms = gains[i];
    json->AddRow(std::string("wal group-gain ") + ProfileName(profiles[i]),
                 row);
  }
  std::printf("# group commit buys %.2fx on the spinning disk vs %.2fx on "
              "flash: the rotational barrier it amortizes is ~100x smaller "
              "there, so what remains is append batching\n",
              gains[0], gains[1]);
}

}  // namespace

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  const bool smoke = flags::GetBool("smoke", false);
  const bool with_wal = flags::GetBool("wal", false);
  JsonWriter json("device_profiles");
  Gate gate;

  RunPlanChoice(&gate, &json, smoke);
  RunMergeSection(&gate, &json, smoke);
  RunThroughputSection(&gate, &json);
  if (with_wal && !smoke) RunWalSection(&json);

  std::printf("\n%d/%d device-profile gates passed\n", gate.passed,
              gate.checks);
  return gate.passed == gate.checks ? 0 : 1;
}
