// Closed-loop multi-client throughput of the serving API.
//
// N clients drive the engine through the real per-client surface: each opens
// a Session over the Database, prepares its query shapes once
// (Table::Prepare — the plan cache is shared across clients), and submits a
// fixed budget of bound executions — a mix of Query-1 PTQ probes, Query-3
// secondary lookups, and top-k — while a background ingest thread feeds a
// Fractured table whose flushes/merges run on the MaintenanceManager's
// worker thread. The sweep reports wall-clock ops/sec and per-operation
// latency percentiles (wall microseconds around Submit()+wait, and the
// operation's own simulated disk milliseconds as measured on the session
// worker and carried back in QueryResult).
//
// Scaling is made host-independent by running the SimDisk in realtime mode:
// every access sleeps wall time proportional to its simulated cost
// (--sleep_us_per_ms), outside every storage latch. A client that is
// "waiting on the disk" (for these cache-resident queries, mostly the
// Costinit file opens; for misses, seeks + transfers) therefore blocks for
// real, and the 1 -> 8 thread speedup measures how well the engine overlaps
// clients — buffer-pool shard latches, I/O outside the latch, striped disk
// stats — rather than how many cores the host has. With the pre-sharding
// single-mutex pool, every one of those sleeps would serialize.
//
//   ./bench_throughput [--scale=0.3] [--seed=42] [--threads=1,2,4,8]
//                      [--ops=300] [--pool_mb=256] [--sleep_us_per_ms=10]
//                      [--json=BENCH_throughput.json] [--no-pruning]
//                      [--metrics] [--smoke]
//                      [--partitions=1,2,4,8] [--clients=8]
//                      [--wal=off,commit,group] [--wal_dir=/tmp]
//
// --wal switches to the durability sweep: a FIXED number of clients
// (--clients, default 8) run a pure closed-loop ingest workload
// (Session::SubmitInsert into one fractured table), once per durability
// mode. `off` is the seed behaviour (no journal — the ceiling), `commit`
// syncs the log once per operation (the classic fsync-per-commit tax: one
// simulated rotational latency each), `group` batches concurrent commits
// behind one leader sync. Realtime mode converts those simulated latencies
// into real sleeps, so the rows measure what group commit exists to buy:
// how many of the per-commit syncs the leader absorbs. After each durable
// row the database is reopened from its log and the recovery replay is
// reported (records, simulated ms). Exits non-zero when group commit fails
// to reach 3x the per-commit-sync ingest throughput — the durability
// acceptance gate. --metrics dumps the Prometheus text (including the
// upi_wal_* families) after the last row.
//
// --partitions switches to the horizontal-partitioning sweep: a FIXED number
// of clients (--clients, default 8) drive one write-hot table under
// continuous ingest, once per shard count P. P=1 builds the table with
// CreateFracturedTable — the honest single-table ceiling, where one latch and
// one maintenance domain mean every flush (which holds the table's exclusive
// lock across realtime-sleeping I/O) blocks every reader and writer. P>1
// builds the same data as a hash-partitioned table (CreatePartitionedTable):
// writes route to the owning shard, PTQs prune to the admissible shards, and
// per-shard flushes overlap on two maintenance workers. Exits non-zero when
// the best partitioned row fails to beat the P=1 ceiling's ops/sec — the
// scatter-gather acceptance gate. --metrics additionally dumps the Prometheus
// text (including the upi_partition_* families) after the last sweep row.
//
// --metrics appends an observability section: a metrics-on vs metrics-off
// overhead comparison (realtime sleeps disabled so the engine's CPU path
// dominates — the registry's striped counters must be within noise of the
// compiled-in-but-disabled path) followed by the full Prometheus text dump
// of the engine's MetricsSnapshot. --smoke shrinks the sweep (2 client
// counts, a few dozen ops) for CI.
//
// The nfrac column reports the ingest-fed fractured table's fracture count
// at the end of each sweep — the fan-out every stream-table probe would pay
// without pruning. --no-pruning disables the fracture summaries on that
// table (see UpiOptions::enable_pruning), demonstrating the pruning win
// under concurrent ingest; rows are identical either way.
//
// Exits non-zero when the max-thread configuration fails to reach a 3x
// ops/sec speedup over one client (the sharded pool's acceptance bar).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "bench_util.h"
#include "engine/database.h"
#include "engine/session.h"
#include "sim/cost_params.h"

using namespace upi;
using namespace upi::bench;

namespace {

struct OpLatency {
  double wall_us = 0.0;
  double sim_ms = 0.0;
};

struct SweepRow {
  size_t threads = 0;
  double wall_s = 0.0;
  double ops_per_sec = 0.0;
  size_t ops = 0;
  size_t nfrac = 0;  // stream table's fracture count at sweep end
  OpLatency p50, p99;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  std::nth_element(v->begin(), v->begin() + idx, v->end());
  return (*v)[idx];
}

catalog::Tuple CloneWithId(const catalog::Tuple& src, catalog::TupleId id) {
  std::vector<catalog::Value> values(src.values());
  return catalog::Tuple(id, src.existence(), std::move(values));
}

std::vector<size_t> ParseSizeList(const std::string& spec) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(
        static_cast<size_t>(std::stoul(spec.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return out;
}

// The --partitions sweep: same closed-loop clients, but the variable is the
// shard count of the one write-hot table, not the client count. Every P gets
// a fresh Database so pools, maintenance queues, and metrics start clean.
//
// The dataset is Cartel car observations clustered on the road segment —
// the partitionable case horizontal partitioning exists for: a tuple's
// segment alternatives are the true segment plus its *neighbors* (lexically
// adjacent names), so range splits at routing-key quantiles keep every
// alternative of almost every tuple inside one shard and the per-shard
// summaries prune segment PTQs to ~1 of P. DBLP institutions would not work
// here: an author's alternative institutions scatter uniformly, every shard's
// Bloom fence saturates, and the fan-out pays P * Costinit per query.
int RunPartitionSweep(const std::vector<size_t>& partitions, bool smoke,
                      bool dump_metrics) {
  const size_t nclients =
      static_cast<size_t>(flags::GetInt64("clients", 8));
  const size_t ops_per_client =
      static_cast<size_t>(flags::GetInt64("ops", smoke ? 40 : 240));
  const uint64_t pool_mb =
      static_cast<uint64_t>(flags::GetInt64("pool_mb", 256));
  const double sleep_us_per_ms = flags::GetDouble("sleep_us_per_ms", 40.0);
  const uint64_t seed = static_cast<uint64_t>(flags::GetInt64("seed", 42));
  const bool pruning = !flags::GetBool("no-pruning", false);

  CartelData d = MakeCartel();
  core::UpiOptions obs_opts;
  obs_opts.cluster_column = datagen::CarObsCols::kSegment;
  obs_opts.cutoff = 0.1;
  obs_opts.enable_pruning = pruning;

  // Routing keys (each tuple's highest-probability segment), sorted: the
  // source of the range splits and of the query values.
  std::vector<std::string> keys;
  keys.reserve(d.observations.size());
  for (const catalog::Tuple& t : d.observations) {
    keys.push_back(t.values()[datagen::CarObsCols::kSegment]
                       .discrete()
                       .alternatives()[0]
                       .value);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<std::string> segments;  // query mix: spread across the range
  for (size_t i = 0; i < 16; ++i) {
    segments.push_back(keys[(2 * i + 1) * keys.size() / 32]);
  }
  constexpr double kQts[] = {0.3, 0.5, 0.7};

  PrintTitle("Partitioned scatter-gather throughput (fixed clients)");
  std::printf("# observations=%zu  pool=%lluMiB  clients=%zu  ops/client=%zu  "
              "sleep=%.1fus/sim-ms  maintenance_workers=2  pruning=%s\n",
              d.observations.size(), static_cast<unsigned long long>(pool_mb),
              nclients, ops_per_client, sleep_us_per_ms,
              pruning ? "on" : "off");
  std::printf("%-6s %10s %9s %6s %8s %8s %8s %6s %12s %12s %12s %12s\n", "P",
              "ops/s", "speedup", "nfrac", "probed", "pruned", "ingested",
              "maint", "p50_wall_us", "p99_wall_us", "p50_sim_ms",
              "p99_sim_ms");

  struct PartRow {
    size_t partitions = 0;
    double ops_per_sec = 0.0;
    size_t nfrac = 0;
    uint64_t probed = 0, pruned = 0;
    uint64_t ingested = 0, maint_tasks = 0;
    OpLatency p50, p99;
  };
  JsonWriter json("partitioning");
  std::vector<PartRow> rows;
  std::atomic<catalog::TupleId> next_id{1u << 30};
  uint64_t ingested_before = 0;

  for (size_t nparts : partitions) {
    engine::DatabaseOptions opts;
    opts.device = DeviceFromFlags();
    opts.pool_bytes = pool_mb << 20;
    opts.maintenance.num_workers = 2;  // shard flushes can overlap
    // Write-heavy serving config: flush small and often. This is the
    // regime the sweep exists to measure — the single table funnels every
    // flush, merge, and the resulting delta-fracture probes through one
    // maintenance domain; the partitioned table splits all three P ways.
    opts.maintenance.policy.flush_max_buffered_tuples = 2048;
    engine::Database db(opts);

    engine::Table* stream = nullptr;
    if (nparts <= 1) {
      // The ceiling every partitioned row is judged against: one fractured
      // table, one lock, one maintenance domain.
      stream = db.CreateFracturedTable(
                     "car_obs", datagen::CartelGenerator::CarObservationSchema(),
                     obs_opts, {}, d.observations)
                   .ValueOrDie();
    } else {
      engine::PartitionOptions popts;
      popts.scheme = engine::PartitionOptions::Scheme::kRange;
      popts.num_shards = nparts;
      popts.enable_pruning = pruning;
      // Splits at routing-key quantiles (deduplicated: they must ascend
      // strictly), so shards hold equal tuple counts, not equal key ranges.
      for (size_t i = 1; i < nparts; ++i) {
        std::string split = keys[i * keys.size() / nparts];
        if (popts.range_splits.empty() || split > popts.range_splits.back()) {
          popts.range_splits.push_back(std::move(split));
        }
      }
      popts.num_shards = popts.range_splits.size() + 1;
      stream = db.CreatePartitionedTable(
                     "car_obs", datagen::CartelGenerator::CarObservationSchema(),
                     obs_opts, {}, popts, d.observations)
                   .ValueOrDie();
    }

    engine::PreparedQuery prep_ptq =
        stream->Prepare(engine::Query::Ptq("", 0.5)).ValueOrDie();
    engine::PreparedQuery prep_topk =
        stream->Prepare(engine::Query::TopK("", 10)).ValueOrDie();

    // Ingest starts before the measurement window so every configuration is
    // measured in its steady state: the single table already carrying the
    // delta fractures its one insert buffer forces on it, the partitioned
    // table spreading the same feed over P buffers and P maintenance
    // domains. Each ingest thread owns a generator (MakeObservation mutates
    // the generator's RNG).
    std::atomic<bool> stop_ingest{false};
    std::vector<std::thread> ingest;
    for (size_t w = 0; w < 2; ++w) {
      ingest.emplace_back([&, w] {
        datagen::CartelConfig cfg = d.cfg;
        cfg.seed = d.cfg.seed + 1000 + w;
        datagen::CartelGenerator gen(cfg);
        while (!stop_ingest.load(std::memory_order_relaxed)) {
          for (int burst = 0; burst < 4; ++burst) {
            CheckOk(stream->Insert(gen.MakeObservation(next_id.fetch_add(1))));
          }
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        }
      });
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(smoke ? 150 : 400));
    {
      std::vector<core::PtqMatch> out;
      for (const std::string& seg : segments) {
        CheckOk(prep_ptq.Bind(seg, 0.3).Execute(&out).status());
      }
    }
    db.env()->disk()->SetRealtimeScale(sleep_us_per_ms);

    std::vector<std::vector<OpLatency>> lat(nclients);
    auto sweep_t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (size_t t = 0; t < nclients; ++t) {
      clients.emplace_back([&, t] {
        Rng rng(seed * 7919 + t);
        engine::Session session(&db);
        lat[t].reserve(ops_per_client);
        for (size_t op = 0; op < ops_per_client; ++op) {
          double qt = kQts[rng.Uniform(3)];
          auto t0 = std::chrono::steady_clock::now();
          uint64_t kind = rng.Uniform(100);
          std::future<Result<engine::QueryResult>> fut;
          if (kind < 80) {  // PTQ on the routed attribute: prunes to ~1 shard
            fut = session.Submit(prep_ptq,
                                 segments[rng.Uniform(segments.size())], qt);
          } else {  // top-k under the global k-th-score bound
            fut = session.Submit(prep_topk,
                                 segments[rng.Uniform(segments.size())]);
          }
          Result<engine::QueryResult> res = fut.get();
          CheckOk(res.status());
          auto t1 = std::chrono::steady_clock::now();
          OpLatency l;
          l.wall_us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          l.sim_ms = res.value().sim_ms;
          lat[t].push_back(l);
        }
      });
    }
    for (std::thread& c : clients) c.join();
    auto sweep_t1 = std::chrono::steady_clock::now();
    stop_ingest.store(true);
    for (std::thread& w : ingest) w.join();

    PartRow row;
    row.partitions = nparts;
    row.ingested =
        next_id.load(std::memory_order_relaxed) - (1u << 30) - ingested_before;
    ingested_before += row.ingested;
    row.maint_tasks = db.maintenance()->stats().tasks();
    double wall_s =
        std::chrono::duration<double>(sweep_t1 - sweep_t0).count();
    row.ops_per_sec =
        static_cast<double>(nclients * ops_per_client) / wall_s;
    if (stream->partitioned() != nullptr) {
      engine::PartitionedTable* part = stream->partitioned();
      for (size_t s = 0; s < part->num_shards(); ++s) {
        row.nfrac += part->shard_fractured(s)->num_fractures();
      }
      row.probed = part->shards_probed_total();
      row.pruned = part->shards_pruned_total();
    } else {
      row.nfrac = stream->fractured()->num_fractures();
    }
    std::vector<double> wall, sim;
    for (auto& v : lat) {
      for (const OpLatency& l : v) {
        wall.push_back(l.wall_us);
        sim.push_back(l.sim_ms);
      }
    }
    row.p50.wall_us = Percentile(&wall, 0.50);
    row.p99.wall_us = Percentile(&wall, 0.99);
    row.p50.sim_ms = Percentile(&sim, 0.50);
    row.p99.sim_ms = Percentile(&sim, 0.99);
    rows.push_back(row);

    double speedup = row.ops_per_sec / rows.front().ops_per_sec;
    std::printf(
        "%-6zu %10.0f %8.2fx %6zu %8llu %8llu %8llu %6llu %12.0f %12.0f "
        "%12.1f %12.1f\n",
        nparts, row.ops_per_sec, speedup, row.nfrac,
        static_cast<unsigned long long>(row.probed),
        static_cast<unsigned long long>(row.pruned),
        static_cast<unsigned long long>(row.ingested),
        static_cast<unsigned long long>(row.maint_tasks), row.p50.wall_us,
        row.p99.wall_us, row.p50.sim_ms, row.p99.sim_ms);
    char config[96];
    std::snprintf(config, sizeof(config),
                  "partitions=%zu clients=%zu nfrac=%zu pruning=%s", nparts,
                  nclients, row.nfrac, pruning ? "on" : "off");
    QueryCost cost;
    cost.sim_ms = row.p99.sim_ms;
    cost.wall_ms = wall_s * 1000.0;
    cost.rows = static_cast<size_t>(row.ops_per_sec);
    json.AddRow(config, cost);

    if (dump_metrics && nparts == partitions.back()) {
      std::printf("\n");
      std::printf("%s", db.MetricsSnapshot().ToPrometheus().c_str());
    }
  }

  // The acceptance gate: partitioning must buy throughput over the
  // single-table ceiling at the same client count.
  const PartRow* baseline = nullptr;
  const PartRow* best_part = nullptr;
  for (const PartRow& r : rows) {
    if (r.partitions <= 1) {
      baseline = &r;
    } else if (best_part == nullptr ||
               r.ops_per_sec > best_part->ops_per_sec) {
      best_part = &r;
    }
  }
  if (baseline != nullptr && best_part != nullptr) {
    std::printf("P=1 -> P=%zu: %.2fx ops/sec at %zu clients\n",
                best_part->partitions,
                best_part->ops_per_sec / baseline->ops_per_sec, nclients);
    if (best_part->ops_per_sec <= baseline->ops_per_sec) {
      std::printf("FAIL: partitioned ops/sec must beat the single-table "
                  "ceiling\n");
      return 1;
    }
  }
  return 0;
}

// The --wal sweep: closed-loop multi-client ingest, once per durability
// mode. The interesting comparison is commit vs group at the same client
// count: both journal every insert through the same WAL, both return only
// after the record is durable, and the only difference is whether each
// commit pays its own simulated rotational latency (made real by realtime
// mode) or shares the leader's.
int RunWalSweep(const std::vector<std::string>& modes, bool smoke,
                bool dump_metrics) {
  // Higher defaults than the scaling sweep: 16 committers and a steeper
  // realtime scale keep the (simulated) rotational latency — the thing the
  // two modes disagree about — dominant over per-op CPU even on small CI
  // hosts, so the commit-vs-group ratio measures the protocol, not the
  // host's scheduler.
  const size_t nclients =
      static_cast<size_t>(flags::GetInt64("clients", 16));
  const size_t ops_per_client =
      static_cast<size_t>(flags::GetInt64("ops", smoke ? 40 : 200));
  const uint64_t pool_mb =
      static_cast<uint64_t>(flags::GetInt64("pool_mb", 256));
  const double sleep_us_per_ms = flags::GetDouble("sleep_us_per_ms", 1000.0);

  DblpData d = MakeDblp(/*with_publications=*/false);
  std::vector<catalog::Tuple> base(d.authors.begin(),
                                   d.authors.begin() + d.authors.size() / 2);

  PrintTitle("Durability: WAL mode vs closed-loop ingest throughput");
  std::printf("# authors=%zu  pool=%lluMiB  clients=%zu  inserts/client=%zu  "
              "sleep=%.1fus/sim-ms\n",
              base.size(), static_cast<unsigned long long>(pool_mb), nclients,
              ops_per_client, sleep_us_per_ms);
  std::printf("%-8s %10s %9s %8s %8s %10s %12s %12s %10s %10s\n", "wal",
              "ops/s", "vs_commit", "syncs", "appends", "grp_mean",
              "p50_wall_us", "p99_wall_us", "rec_recs", "rec_simms");

  struct WalRow {
    std::string mode;
    double ops_per_sec = 0.0;
    double syncs = 0.0, appends = 0.0;
    OpLatency p50, p99;
    uint64_t recovered_records = 0;
    double recovery_sim_ms = 0.0;
  };
  JsonWriter json("durability");
  std::vector<WalRow> rows;
  std::atomic<catalog::TupleId> next_id{1u << 30};

  for (const std::string& mode : modes) {
    // Each mode gets a fresh database AND a fresh log directory; the
    // reopen below replays this row's log and nothing else.
    char dir_tmpl[] = "/tmp/upi_bench_wal_XXXXXX";
    const char* wal_dir = ::mkdtemp(dir_tmpl);
    if (wal_dir == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }

    engine::DatabaseOptions opts;
    opts.device = DeviceFromFlags();
    opts.pool_bytes = pool_mb << 20;
    opts.maintenance.num_workers = 1;
    if (mode == "commit") {
      opts.wal_dir = wal_dir;
      opts.wal_mode = wal::WalMode::kCommit;
    } else if (mode == "group") {
      opts.wal_dir = wal_dir;
      opts.wal_mode = wal::WalMode::kGroup;
    } else if (mode != "off") {
      std::fprintf(stderr, "unknown --wal mode '%s'\n", mode.c_str());
      return 1;
    }

    WalRow row;
    row.mode = mode;
    {
      engine::Database db(opts);
      engine::Table* stream =
          db.CreateFracturedTable("author_stream",
                                  datagen::DblpGenerator::AuthorSchema(),
                                  AuthorUpiOptions(0.1), {}, base)
              .ValueOrDie();
      db.env()->disk()->SetRealtimeScale(sleep_us_per_ms);

      std::vector<std::vector<OpLatency>> lat(nclients);
      auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> clients;
      for (size_t t = 0; t < nclients; ++t) {
        clients.emplace_back([&, t] {
          engine::Session session(&db);
          lat[t].reserve(ops_per_client);
          for (size_t op = 0; op < ops_per_client; ++op) {
            const catalog::Tuple& src =
                d.authors[(t * ops_per_client + op) % d.authors.size()];
            auto op_t0 = std::chrono::steady_clock::now();
            auto fut = session.SubmitInsert(
                *stream, CloneWithId(src, next_id.fetch_add(1)));
            Result<engine::QueryResult> res = fut.get();
            CheckOk(res.status());
            auto op_t1 = std::chrono::steady_clock::now();
            OpLatency l;
            l.wall_us = std::chrono::duration<double, std::micro>(op_t1 -
                                                                  op_t0)
                            .count();
            l.sim_ms = res.value().sim_ms;
            lat[t].push_back(l);
          }
        });
      }
      for (std::thread& c : clients) c.join();
      auto t1 = std::chrono::steady_clock::now();
      db.env()->disk()->SetRealtimeScale(0.0);

      double wall_s = std::chrono::duration<double>(t1 - t0).count();
      row.ops_per_sec =
          static_cast<double>(nclients * ops_per_client) / wall_s;
      auto snap = db.MetricsSnapshot();
      row.syncs = snap.SumOf("upi_wal_syncs_total");
      row.appends = snap.SumOf("upi_wal_appends_total");
      std::vector<double> wall;
      for (auto& v : lat) {
        for (const OpLatency& l : v) wall.push_back(l.wall_us);
      }
      row.p50.wall_us = Percentile(&wall, 0.50);
      row.p99.wall_us = Percentile(&wall, 0.99);

      if (dump_metrics && mode == modes.back()) {
        std::printf("\n");
        std::printf("%s", db.MetricsSnapshot().ToPrometheus().c_str());
      }
    }

    if (mode != "off") {
      // Crash-less recovery demonstration: reopen from the log the sweep
      // just wrote and report what replay cost.
      engine::DatabaseOptions reopen = opts;
      reopen.maintenance.num_workers = 0;
      engine::Database recovered(reopen);
      row.recovered_records = recovered.recovery_stats().records;
      row.recovery_sim_ms = recovered.recovery_stats().sim_ms;
    }
    std::filesystem::remove_all(wal_dir);

    rows.push_back(row);
    double vs_commit = 0.0;
    for (const WalRow& r : rows) {
      if (r.mode == "commit") vs_commit = row.ops_per_sec / r.ops_per_sec;
    }
    double grp_mean =
        row.syncs > 0.0 ? row.appends / row.syncs : 0.0;
    std::printf("%-8s %10.0f %8.2fx %8.0f %8.0f %10.1f %12.0f %12.0f "
                "%10llu %10.1f\n",
                row.mode.c_str(), row.ops_per_sec, vs_commit, row.syncs,
                row.appends, grp_mean, row.p50.wall_us, row.p99.wall_us,
                static_cast<unsigned long long>(row.recovered_records),
                row.recovery_sim_ms);
    char config[96];
    std::snprintf(config, sizeof(config),
                  "wal=%s clients=%zu syncs=%.0f appends=%.0f", row.mode.c_str(),
                  nclients, row.syncs, row.appends);
    QueryCost cost;
    cost.sim_ms = row.recovery_sim_ms;
    cost.wall_ms = 1e3 * static_cast<double>(nclients * ops_per_client) /
                   row.ops_per_sec;
    cost.rows = static_cast<size_t>(row.ops_per_sec);
    json.AddRow(config, cost);
  }

  // The acceptance gate: group commit must absorb enough syncs to reach 3x
  // the per-commit-sync ingest rate.
  const WalRow* commit = nullptr;
  const WalRow* group = nullptr;
  for (const WalRow& r : rows) {
    if (r.mode == "commit") commit = &r;
    if (r.mode == "group") group = &r;
  }
  if (commit != nullptr && group != nullptr) {
    double speedup = group->ops_per_sec / commit->ops_per_sec;
    std::printf("commit -> group: %.2fx ingest ops/sec at %zu clients\n",
                speedup, nclients);
    if (speedup < 3.0) {
      std::printf("FAIL: group commit must reach >= 3x the per-commit-sync "
                  "throughput\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  const bool smoke = flags::GetBool("smoke", false);
  const bool dump_metrics = flags::GetBool("metrics", false);

  {
    std::string wal_spec = flags::GetString("wal", "");
    if (!wal_spec.empty()) {
      if (flags::GetDouble("scale", -1.0) < 0.0) {
        std::string arg = "--scale=0.3";
        char* extra[] = {argv[0], arg.data()};
        flags::Parse(2, extra);
      }
      std::vector<std::string> modes;
      size_t pos = 0;
      while (pos < wal_spec.size()) {
        size_t comma = wal_spec.find(',', pos);
        if (comma == std::string::npos) comma = wal_spec.size();
        modes.push_back(wal_spec.substr(pos, comma - pos));
        pos = comma + 1;
      }
      return RunWalSweep(modes, smoke, dump_metrics);
    }
  }

  {
    std::string part_spec = flags::GetString("partitions", "");
    if (!part_spec.empty()) {
      // Default scale 0.3, same as the thread sweep below.
      if (flags::GetDouble("scale", -1.0) < 0.0) {
        std::string arg = "--scale=0.3";
        char* extra[] = {argv[0], arg.data()};
        flags::Parse(2, extra);
      }
      return RunPartitionSweep(ParseSizeList(part_spec), smoke, dump_metrics);
    }
  }

  const size_t ops_per_client =
      static_cast<size_t>(flags::GetInt64("ops", smoke ? 60 : 300));
  const uint64_t pool_mb =
      static_cast<uint64_t>(flags::GetInt64("pool_mb", 256));
  const double sleep_us_per_ms = flags::GetDouble("sleep_us_per_ms", 40.0);
  const uint64_t seed = static_cast<uint64_t>(flags::GetInt64("seed", 42));

  std::vector<size_t> thread_counts =
      ParseSizeList(flags::GetString("threads", smoke ? "1,2" : "1,2,4,8"));

  // Default scale 0.3 keeps the whole database resident in the default pool.
  if (flags::GetDouble("scale", -1.0) < 0.0) {
    // MakeDblp reads --scale; bench_util has no override hook, so re-parse
    // with the default appended.
    std::string arg = "--scale=0.3";
    char* extra[] = {argv[0], arg.data()};
    flags::Parse(2, extra);
  }
  DblpData d = MakeDblp(/*with_publications=*/false);

  engine::DatabaseOptions opts;
  opts.device = DeviceFromFlags();
  opts.pool_bytes = pool_mb << 20;
  opts.maintenance.num_workers = 1;  // background flushes/merges
  engine::Database db(opts);

  // Charge the paper's Costinit per query (the cold protocol's file opens):
  // that is the floor of real per-query device time, and in realtime mode it
  // is what each client overlaps with the others.
  core::UpiOptions author_opts = AuthorUpiOptions(0.1);
  author_opts.charge_open_per_query = true;
  engine::Table* authors =
      db.CreateUpiTable("author", datagen::DblpGenerator::AuthorSchema(),
                        author_opts, {datagen::AuthorCols::kCountry},
                        d.authors)
          .ValueOrDie();
  // The write-heavy side: a fractured copy of the first half, fed by the
  // ingest thread below.
  std::vector<catalog::Tuple> half(d.authors.begin(),
                                   d.authors.begin() + d.authors.size() / 2);
  core::UpiOptions stream_opts = AuthorUpiOptions(0.1);
  stream_opts.enable_pruning = !flags::GetBool("no-pruning", false);
  engine::Table* stream =
      db.CreateFracturedTable("author_stream",
                              datagen::DblpGenerator::AuthorSchema(),
                              stream_opts, {}, half)
          .ValueOrDie();

  // Probe values: selective institutions for the point-query mix (hundreds
  // of matching rows, the OLTP-ish case); the popular one only for top-k.
  std::vector<std::string> institutions = {
      d.selective_institution,
      datagen::FindValueWithApproxCount(d.authors,
                                        datagen::AuthorCols::kInstitution,
                                        1000),
      datagen::FindValueWithApproxCount(d.authors,
                                        datagen::AuthorCols::kInstitution,
                                        100)};
  const std::string country = datagen::FindValueWithApproxCount(
      d.authors, datagen::AuthorCols::kCountry, 500);
  constexpr double kQts[] = {0.5, 0.7, 0.9};

  // The prepared shapes every client executes; the plan caches are shared
  // (PreparedQuery copies alias one cache), so across the whole sweep each
  // shape plans a handful of times and everything else is a cache hit.
  engine::PreparedQuery prep_ptq =
      authors->Prepare(engine::Query::Ptq("", 0.5)).ValueOrDie();
  engine::PreparedQuery prep_sec =
      authors->Prepare(
                 engine::Query::Secondary(datagen::AuthorCols::kCountry, "",
                                          0.5))
          .ValueOrDie();
  engine::PreparedQuery prep_topk =
      authors->Prepare(engine::Query::TopK("", 10)).ValueOrDie();
  engine::PreparedQuery prep_stream =
      stream->Prepare(engine::Query::Ptq("", 0.5)).ValueOrDie();

  // Warm the cache (the sweep measures the serving regime, not cold starts),
  // then start the realtime clock.
  {
    std::vector<core::PtqMatch> out;
    for (const std::string& inst : institutions) {
      CheckOk(prep_ptq.Bind(inst, 0.3).Execute(&out).status());
      CheckOk(prep_stream.Bind(inst, 0.3).Execute(&out).status());
    }
    CheckOk(prep_sec.Bind(country, 0.3).Execute(&out).status());
  }
  db.env()->disk()->SetRealtimeScale(sleep_us_per_ms);

  PrintTitle("Closed-loop multi-client throughput (planned queries)");
  std::printf("# authors=%zu  pool=%lluMiB  shards=%zu  ops/client=%zu  "
              "sleep=%.1fus/sim-ms  host_cores=%u  pruning=%s\n",
              d.authors.size(), static_cast<unsigned long long>(pool_mb),
              db.env()->pool()->num_shards(), ops_per_client, sleep_us_per_ms,
              std::thread::hardware_concurrency(),
              stream_opts.enable_pruning ? "on" : "off");
  std::printf("%-8s %10s %9s %6s %12s %12s %12s %12s\n", "clients", "ops/s",
              "speedup", "nfrac", "p50_wall_us", "p99_wall_us", "p50_sim_ms",
              "p99_sim_ms");

  JsonWriter json("throughput");
  std::vector<SweepRow> rows;
  std::atomic<catalog::TupleId> next_id{1u << 30};

  for (size_t nthreads : thread_counts) {
    std::atomic<bool> stop_ingest{false};
    std::thread ingest([&] {
      size_t i = 0;
      while (!stop_ingest.load(std::memory_order_relaxed)) {
        const catalog::Tuple& src = d.authors[i++ % d.authors.size()];
        CheckOk(stream->Insert(CloneWithId(src, next_id.fetch_add(1))));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    std::vector<std::vector<OpLatency>> lat(nthreads);
    auto sweep_t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (size_t t = 0; t < nthreads; ++t) {
      clients.emplace_back([&, t] {
        Rng rng(seed * 7919 + t);
        // The real per-client surface: one Session, closed-loop submits.
        engine::Session session(&db);
        lat[t].reserve(ops_per_client);
        for (size_t op = 0; op < ops_per_client; ++op) {
          double qt = kQts[rng.Uniform(3)];
          auto t0 = std::chrono::steady_clock::now();
          uint64_t kind = rng.Uniform(100);
          std::future<Result<engine::QueryResult>> fut;
          if (kind < 55) {  // Query 1: PTQ on the clustered attribute
            fut = session.Submit(prep_ptq,
                                 institutions[rng.Uniform(institutions.size())],
                                 qt);
          } else if (kind < 80) {  // Query 3: secondary lookup
            fut = session.Submit(prep_sec, country, qt);
          } else if (kind < 90) {  // top-k
            fut = session.Submit(
                prep_topk, institutions[rng.Uniform(institutions.size())]);
          } else {  // PTQ against the fractured table under ingest
            fut = session.Submit(prep_stream,
                                 institutions[rng.Uniform(institutions.size())],
                                 qt);
          }
          Result<engine::QueryResult> res = fut.get();
          CheckOk(res.status());
          auto t1 = std::chrono::steady_clock::now();
          OpLatency l;
          l.wall_us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          l.sim_ms = res.value().sim_ms;
          lat[t].push_back(l);
        }
      });
    }
    for (std::thread& c : clients) c.join();
    auto sweep_t1 = std::chrono::steady_clock::now();
    stop_ingest.store(true);
    ingest.join();

    SweepRow row;
    row.threads = nthreads;
    row.ops = nthreads * ops_per_client;
    row.nfrac = stream->fractured()->num_fractures();
    row.wall_s = std::chrono::duration<double>(sweep_t1 - sweep_t0).count();
    row.ops_per_sec = static_cast<double>(row.ops) / row.wall_s;
    std::vector<double> wall, sim;
    for (auto& v : lat) {
      for (const OpLatency& l : v) {
        wall.push_back(l.wall_us);
        sim.push_back(l.sim_ms);
      }
    }
    row.p50.wall_us = Percentile(&wall, 0.50);
    row.p99.wall_us = Percentile(&wall, 0.99);
    row.p50.sim_ms = Percentile(&sim, 0.50);
    row.p99.sim_ms = Percentile(&sim, 0.99);
    rows.push_back(row);

    double speedup = row.ops_per_sec / rows.front().ops_per_sec;
    std::printf("%-8zu %10.0f %8.2fx %6zu %12.0f %12.0f %12.1f %12.1f\n",
                nthreads, row.ops_per_sec, speedup, row.nfrac,
                row.p50.wall_us, row.p99.wall_us, row.p50.sim_ms,
                row.p99.sim_ms);
    char config[64];
    std::snprintf(config, sizeof(config), "threads=%zu nfrac=%zu pruning=%s",
                  nthreads, row.nfrac,
                  stream_opts.enable_pruning ? "on" : "off");
    QueryCost cost;
    cost.sim_ms = row.p99.sim_ms;
    cost.wall_ms = row.wall_s * 1000.0;
    cost.rows = static_cast<size_t>(row.ops_per_sec);
    json.AddRow(config, cost);
  }

  std::printf("# pool: hits=%llu misses=%llu  maintenance tasks=%llu\n",
              static_cast<unsigned long long>(db.env()->pool()->hits()),
              static_cast<unsigned long long>(db.env()->pool()->misses()),
              static_cast<unsigned long long>(db.maintenance()->stats().tasks()));
  std::printf("# prepared plan cache: %llu plannings, %llu hits across the "
              "whole sweep\n",
              static_cast<unsigned long long>(
                  prep_ptq.plans() + prep_sec.plans() + prep_topk.plans() +
                  prep_stream.plans()),
              static_cast<unsigned long long>(prep_ptq.hits() +
                                              prep_sec.hits() +
                                              prep_topk.hits() +
                                              prep_stream.hits()));

  double speedup =
      rows.back().ops_per_sec / rows.front().ops_per_sec;
  if (rows.size() > 1) {
    std::printf("%zu -> %zu clients: %.2fx ops/sec\n", rows.front().threads,
                rows.back().threads, speedup);
    // The acceptance gate is defined against a single-client baseline; a
    // sweep starting elsewhere (e.g. --threads=4,8) is informational only.
    if (rows.front().threads == 1 && rows.back().threads >= 8 &&
        speedup < 3.0) {
      std::printf("FAIL: expected >= 3x\n");
      return 1;
    }
  }

  if (dump_metrics) {
    // Observability overhead: the identical closed-loop client with the
    // registry recording vs runtime-disabled. Realtime sleeps off so the
    // engine's CPU path (where the counters live) dominates the measurement.
    db.env()->disk()->SetRealtimeScale(0.0);
    auto run_ops = [&](size_t n) {
      Rng rng(seed + 17);
      engine::Session session(&db);
      auto t0 = std::chrono::steady_clock::now();
      for (size_t op = 0; op < n; ++op) {
        auto fut = session.Submit(
            prep_ptq, institutions[rng.Uniform(institutions.size())],
            kQts[rng.Uniform(3)]);
        CheckOk(fut.get().status());
      }
      auto t1 = std::chrono::steady_clock::now();
      return static_cast<double>(n) /
             std::chrono::duration<double>(t1 - t0).count();
    };
    const size_t overhead_ops = smoke ? 300 : 3000;
    run_ops(overhead_ops / 4);  // warm both code paths
    double on_ops = run_ops(overhead_ops);
    db.metrics()->set_enabled(false);
    double off_ops = run_ops(overhead_ops);
    db.metrics()->set_enabled(true);
    std::printf("# metrics overhead: on=%.0f ops/s  off=%.0f ops/s  "
                "(on/off = %.3f)\n",
                on_ops, off_ops, on_ops / off_ops);
    QueryCost on_cost, off_cost;
    on_cost.wall_ms = 1e3 * static_cast<double>(overhead_ops) / on_ops;
    on_cost.rows = static_cast<size_t>(on_ops);
    off_cost.wall_ms = 1e3 * static_cast<double>(overhead_ops) / off_ops;
    off_cost.rows = static_cast<size_t>(off_ops);
    json.AddRow("obs=on", on_cost);
    json.AddRow("obs=off", off_cost);

    std::printf("\n");
    std::printf("%s", db.MetricsSnapshot().ToPrometheus().c_str());
  }
  return 0;
}
