// Micro-benchmarks (google-benchmark) for the substrates: wall-clock CPU
// costs of the building blocks, plus ablations for design choices called out
// in DESIGN.md (bulk load vs random insert, tailored vs plain pointer
// selection, histogram estimation).
#include <benchmark/benchmark.h>

#include "btree/btree.h"
#include "btree/bulk_load.h"
#include "common/random.h"
#include "core/upi.h"
#include "datagen/dblp.h"
#include "histogram/prob_histogram.h"
#include "prob/gaussian2d.h"
#include "storage/db_env.h"

namespace upi {
namespace {

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

void BM_BTreePut(benchmark::State& state) {
  storage::DbEnv env(256ull << 20);
  storage::PageFile* file = env.CreateFile("t", 8192);
  btree::BTree tree(env.MakePager(file));
  Rng rng(1);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Put(Key(static_cast<int>(rng.Uniform(1u << 24)) + i++), "value"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePut);

void BM_BTreeGet(benchmark::State& state) {
  storage::DbEnv env(256ull << 20);
  storage::PageFile* file = env.CreateFile("t", 8192);
  btree::BTreeBuilder builder(env.MakePager(file));
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    (void)builder.Add(Key(i), "value");
  }
  btree::BTree tree = builder.Finish().ValueOrDie();
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(Key(static_cast<int>(rng.Uniform(kN)))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeGet);

void BM_BTreeBulkLoad100k(benchmark::State& state) {
  for (auto _ : state) {
    storage::DbEnv env(256ull << 20);
    storage::PageFile* file = env.CreateFile("t", 8192);
    btree::BTreeBuilder builder(env.MakePager(file));
    for (int i = 0; i < 100000; ++i) {
      (void)builder.Add(Key(i), "value");
    }
    benchmark::DoNotOptimize(builder.Finish());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BTreeBulkLoad100k)->Unit(benchmark::kMillisecond);

void BM_BTreeScan(benchmark::State& state) {
  storage::DbEnv env(256ull << 20);
  storage::PageFile* file = env.CreateFile("t", 8192);
  btree::BTreeBuilder builder(env.MakePager(file));
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) (void)builder.Add(Key(i), "value");
  btree::BTree tree = builder.Finish().ValueOrDie();
  for (auto _ : state) {
    uint64_t n = 0;
    for (btree::Cursor c = tree.SeekToFirst(); c.Valid(); c.Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_BTreeScan)->Unit(benchmark::kMillisecond);

void BM_GaussianProbInCircle(benchmark::State& state) {
  prob::ConstrainedGaussian2D g({0, 0}, 20.0, 60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.ProbInCircle({25, 10}, 30.0));
  }
}
BENCHMARK(BM_GaussianProbInCircle);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution z(2000, 1.0);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_HistogramEstimate(benchmark::State& state) {
  histogram::ProbHistogram h(20);
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) {
    h.Add("v" + std::to_string(rng.Uniform(500)), rng.NextDouble(),
          rng.Bernoulli(0.4));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.EstimateHeapHits("v42", 0.1, 0.3));
  }
}
BENCHMARK(BM_HistogramEstimate);

void BM_UpiInsert(benchmark::State& state) {
  datagen::DblpConfig cfg;
  cfg.num_authors = 1;
  datagen::DblpGenerator gen(cfg);
  storage::DbEnv env(256ull << 20);
  core::UpiOptions opt;
  opt.cluster_column = datagen::AuthorCols::kInstitution;
  core::Upi upi(&env, "a", datagen::DblpGenerator::AuthorSchema(), opt);
  catalog::TupleId id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(upi.Insert(gen.MakeAuthor(id++)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpiInsert);

void BM_UpiQueryPtq(benchmark::State& state) {
  datagen::DblpConfig cfg;
  cfg.num_authors = 20000;
  datagen::DblpGenerator gen(cfg);
  auto tuples = gen.GenerateAuthors();
  storage::DbEnv env(512ull << 20);
  core::UpiOptions opt;
  opt.cluster_column = datagen::AuthorCols::kInstitution;
  opt.charge_open_per_query = false;
  auto upi = core::Upi::Build(&env, "a", datagen::DblpGenerator::AuthorSchema(),
                              opt, {}, tuples)
                 .ValueOrDie();
  std::string v = gen.PopularInstitution();
  for (auto _ : state) {
    std::vector<core::PtqMatch> out;
    benchmark::DoNotOptimize(upi->QueryPtq(v, 0.3, &out));
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_UpiQueryPtq)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace upi

BENCHMARK_MAIN();
