// The cost-based planner against hand-picked access paths.
//
// Runs the Figure 4 workload (Query 1: PTQ on the clustered attribute) and
// the Figure 6 workload (Query 3: secondary probe on Country) through the
// Database facade three ways: every hand-picked physical plan, and the
// planner's choice. The planner row should match the best hand-picked row
// (within noise) at every threshold — it picks per query, so it may switch
// plans across the sweep where the hand-picked rows cannot.
//
// A final section measures the *planning* overhead itself: plan-every-call
// (QueryPlanner::PlanSecondary per probe) vs the prepared path
// (PreparedQuery::Bind hitting the plan cache). The prepared path must stay
// >= 2x cheaper in wall-clock — that is the headroom Table::Prepare buys a
// high-QPS serving loop.
//
//   ./bench_planner [--scale=1] [--seed=42] [--json=BENCH_planner.json]
#include <chrono>

#include "bench_util.h"
#include "engine/database.h"
#include "exec/operators.h"

using namespace upi;
using namespace upi::bench;

namespace {

engine::Plan ForcedPlan(engine::PlanKind kind, int column,
                        const std::string& value, double qt) {
  engine::Plan plan;
  plan.kind = kind;
  plan.column = column;
  plan.value = value;
  plan.qt = qt;
  return plan;
}

QueryCost RunForced(engine::Database* db, engine::Table* table,
                    const engine::Plan& plan) {
  return RunCold(db->env(), [&]() -> size_t {
    std::vector<core::PtqMatch> out;
    CheckOk(exec::Execute(*table->path(), plan, &out));
    return out.size();
  });
}

struct Verdict {
  int rows = 0;
  int within_noise = 0;
};

/// Planner passes when within 10% (or one seek) of the best hand-picked row.
bool WithinNoise(double planner_ms, double best_ms) {
  return planner_ms <= best_ms * 1.10 + 25.0;
}

}  // namespace

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(/*with_publications=*/true);
  JsonWriter json("planner");
  char config[96];
  Verdict verdict;

  // --- Figure 4 workload: Query 1 PTQs on the clustered attribute ----------
  engine::DatabaseOptions dbopts;
  dbopts.device = DeviceFromFlags();
  engine::Database db(dbopts);
  engine::Table* authors =
      db.CreateUpiTable("author", datagen::DblpGenerator::AuthorSchema(),
                        AuthorUpiOptions(0.1), {}, d.authors)
          .ValueOrDie();

  PrintTitle("Planner vs hand-picked plans, Figure 4 workload (Query 1)");
  std::printf("# authors=%zu  value=%s\n", d.authors.size(),
              d.popular_institution.c_str());
  std::printf("%-6s %10s %10s %10s  %-24s %10s\n", "QT", "probe[s]", "scan[s]",
              "plan[s]", "chosen", "pred[s]");
  for (double qt = 0.1; qt <= 0.91; qt += 0.2) {
    QueryCost probe = RunForced(
        &db, authors,
        ForcedPlan(engine::PlanKind::kPrimaryProbe, -1, d.popular_institution,
                   qt));
    QueryCost scan = RunForced(
        &db, authors,
        ForcedPlan(engine::PlanKind::kHeapScan, -1, d.popular_institution, qt));
    engine::Plan chosen;
    QueryCost planned = RunCold(db.env(), [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      chosen = std::move(authors->Run(
                             engine::Query::Ptq(d.popular_institution, qt),
                             &out))
                   .ValueOrDie();
      return out.size();
    });
    double best = std::min(probe.sim_ms, scan.sim_ms);
    ++verdict.rows;
    verdict.within_noise += WithinNoise(planned.sim_ms, best) ? 1 : 0;
    std::printf("%-6.1f %10.3f %10.3f %10.3f  %-24s %10.3f\n", qt,
                probe.sim_ms / 1000.0, scan.sim_ms / 1000.0,
                planned.sim_ms / 1000.0, engine::PlanKindName(chosen.kind),
                chosen.predicted_ms / 1000.0);
    std::snprintf(config, sizeof(config), "fig4 probe qt=%.1f", qt);
    json.AddRow(config, probe);
    std::snprintf(config, sizeof(config), "fig4 scan qt=%.1f", qt);
    json.AddRow(config, scan);
    std::snprintf(config, sizeof(config), "fig4 planner qt=%.1f", qt);
    json.AddRow(config, planned);
  }

  // --- Figure 6 workload: Query 3 secondary probes on Country --------------
  engine::Table* pubs =
      db.CreateUpiTable("pub", datagen::DblpGenerator::PublicationSchema(),
                        PublicationUpiOptions(0.1),
                        {datagen::PublicationCols::kCountry}, d.publications)
          .ValueOrDie();
  const int country = datagen::PublicationCols::kCountry;

  std::printf("\n");
  PrintTitle("Planner vs hand-picked plans, Figure 6 workload (Query 3)");
  std::printf("# publications=%zu  country=%s\n", d.publications.size(),
              d.mid_country.c_str());
  std::printf("%-6s %10s %10s %10s %10s  %-24s %10s\n", "QT", "first[s]",
              "tailor[s]", "scan[s]", "plan[s]", "chosen", "pred[s]");
  for (double qt = 0.1; qt <= 0.91; qt += 0.2) {
    QueryCost first = RunForced(
        &db, pubs,
        ForcedPlan(engine::PlanKind::kSecondaryFirstPointer, country,
                   d.mid_country, qt));
    QueryCost tailored = RunForced(
        &db, pubs,
        ForcedPlan(engine::PlanKind::kSecondaryTailored, country, d.mid_country,
                   qt));
    QueryCost scan = RunForced(
        &db, pubs,
        ForcedPlan(engine::PlanKind::kHeapScan, country, d.mid_country, qt));
    engine::Plan chosen;
    QueryCost planned = RunCold(db.env(), [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      chosen = std::move(pubs->Run(
                             engine::Query::Secondary(country, d.mid_country,
                                                      qt),
                             &out))
                   .ValueOrDie();
      return out.size();
    });
    double best =
        std::min(std::min(first.sim_ms, tailored.sim_ms), scan.sim_ms);
    ++verdict.rows;
    verdict.within_noise += WithinNoise(planned.sim_ms, best) ? 1 : 0;
    std::printf("%-6.1f %10.3f %10.3f %10.3f %10.3f  %-24s %10.3f\n", qt,
                first.sim_ms / 1000.0, tailored.sim_ms / 1000.0,
                scan.sim_ms / 1000.0, planned.sim_ms / 1000.0,
                engine::PlanKindName(chosen.kind), chosen.predicted_ms / 1000.0);
    std::snprintf(config, sizeof(config), "fig6 first-pointer qt=%.1f", qt);
    json.AddRow(config, first);
    std::snprintf(config, sizeof(config), "fig6 tailored qt=%.1f", qt);
    json.AddRow(config, tailored);
    std::snprintf(config, sizeof(config), "fig6 scan qt=%.1f", qt);
    json.AddRow(config, scan);
    std::snprintf(config, sizeof(config), "fig6 planner qt=%.1f", qt);
    json.AddRow(config, planned);
  }

  // --- One EXPLAIN sample ---------------------------------------------------
  std::printf("\n%s",
              pubs->planner()
                  .PlanSecondary(country, d.mid_country, 0.3)
                  .Explain()
                  .c_str());

  // --- Prepared-statement planning overhead --------------------------------
  // Same probe, two regimes: plan-every-call re-prices every candidate per
  // execution; the prepared path buckets the bound parameter on the
  // histogram and serves the cached plan. Pure CPU (planning is RAM-only),
  // so wall-clock is the honest metric.
  std::printf("\n");
  PrintTitle("Planning overhead: plan-every-call vs prepared (wall-clock)");
  const int reps = 4000;
  std::vector<std::string> probe_values;
  for (int i = 0; i < 8; ++i) {
    probe_values.push_back(d.gen->CountryName(2 + 5 * i));
  }
  engine::PreparedQuery prepared =
      pubs->Prepare(engine::Query::Secondary(country, "", 0.3)).ValueOrDie();

  auto t0 = std::chrono::steady_clock::now();
  size_t sink = 0;
  for (int i = 0; i < reps; ++i) {
    engine::Plan p = pubs->planner().PlanSecondary(
        country, probe_values[i % probe_values.size()], 0.3);
    sink += static_cast<size_t>(p.kind);
  }
  auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    engine::BoundQuery bound =
        prepared.Bind(probe_values[i % probe_values.size()]);
    sink += static_cast<size_t>(bound.plan().kind);
  }
  auto t2 = std::chrono::steady_clock::now();

  double every_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  double prepared_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  double ratio = prepared_ms > 0 ? every_ms / prepared_ms : 0.0;
  std::printf("%-24s %10.2f ms  (%d probes)\n", "plan-every-call", every_ms,
              reps);
  std::printf("%-24s %10.2f ms  (%llu plannings, %llu cache hits)\n",
              "prepared Bind()", prepared_ms,
              static_cast<unsigned long long>(prepared.plans()),
              static_cast<unsigned long long>(prepared.hits()));
  std::printf("prepared overhead is %.1fx lower (sink=%zu)\n", ratio, sink);
  ++verdict.rows;
  verdict.within_noise += ratio >= 2.0 ? 1 : 0;
  QueryCost overhead;
  overhead.wall_ms = prepared_ms;
  overhead.rows = reps;
  json.AddRow("prepared-bind overhead", overhead);
  overhead.wall_ms = every_ms;
  json.AddRow("plan-every-call overhead", overhead);

  std::printf("\nplanner within noise of the best hand-picked plan (and "
              "prepared >= 2x cheaper) on %d/%d rows\n",
              verdict.within_noise, verdict.rows);
  return verdict.within_noise == verdict.rows ? 0 : 1;
}
