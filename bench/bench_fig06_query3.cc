// Figure 6: Query 3 runtime — the secondary-index aggregate
//   SELECT Journal, COUNT(*) FROM Publication
//   WHERE Country = <mid country> GROUP BY Journal, confidence >= QT
// comparing (a) PII on an unclustered heap, (b) the UPI's secondary index
// without tailored access (always first pointer), and (c) with tailored
// access (Algorithm 3). Expected shape: tailored access wins by up to ~7x
// over non-tailored and ~8x over PII; non-tailored can even lose to the
// unclustered baseline because it ignores pointer overlap.
//
// Tables are built and queried through the engine's Database facade;
// --json=<path> captures the rows for perf tracking.
#include "bench_util.h"
#include "engine/database.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(/*with_publications=*/true);
  JsonWriter json("fig06_query3");

  engine::DatabaseOptions dbopts;
  dbopts.device = DeviceFromFlags();
  engine::Database pii_db(dbopts);
  engine::Table* table =
      pii_db
          .CreateUnclusteredTable("pub",
                                  datagen::DblpGenerator::PublicationSchema(),
                                  datagen::PublicationCols::kCountry,
                                  {datagen::PublicationCols::kCountry},
                                  d.publications)
          .ValueOrDie();
  engine::Database upi_db(dbopts);
  engine::Table* upi =
      upi_db
          .CreateUpiTable("pub", datagen::DblpGenerator::PublicationSchema(),
                          PublicationUpiOptions(0.1),
                          {datagen::PublicationCols::kCountry}, d.publications)
          .ValueOrDie();

  PrintTitle(
      "Figure 6: Query 3 runtime (simulated seconds) via secondary index on "
      "Country");
  std::printf("# publications=%zu  country=%s\n", d.publications.size(),
              d.mid_country.c_str());
  std::printf("%-6s %14s %14s %14s %7s\n", "QT", "PII-on-heap[s]",
              "UPI-plain[s]", "UPI-tailored[s]", "rows");
  char config[64];
  for (double qt = 0.1; qt <= 0.91; qt += 0.1) {
    QueryCost pii = RunCold(pii_db.env(), [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(table->path()->QueryPtq(d.mid_country, qt, &out));
      return out.size();
    });
    QueryCost plain = RunCold(upi_db.env(), [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(upi->path()->QuerySecondary(
          datagen::PublicationCols::kCountry, d.mid_country, qt,
          core::SecondaryAccessMode::kFirstPointer, &out));
      return out.size();
    });
    QueryCost tailored = RunCold(upi_db.env(), [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(upi->path()->QuerySecondary(
          datagen::PublicationCols::kCountry, d.mid_country, qt,
          core::SecondaryAccessMode::kTailored, &out));
      return out.size();
    });
    std::printf("%-6.1f %14.3f %14.3f %14.3f %7zu\n", qt, pii.sim_ms / 1000.0,
                plain.sim_ms / 1000.0, tailored.sim_ms / 1000.0, tailored.rows);
    std::snprintf(config, sizeof(config), "pii qt=%.1f", qt);
    json.AddRow(config, pii);
    std::snprintf(config, sizeof(config), "upi-plain qt=%.1f", qt);
    json.AddRow(config, plain);
    std::snprintf(config, sizeof(config), "upi-tailored qt=%.1f", qt);
    json.AddRow(config, tailored);
  }
  return 0;
}
