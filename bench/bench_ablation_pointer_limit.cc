// Ablation: the Section 3.2 tuning knob — "limit the number of pointers
// stored in each secondary index entry. Though the query performance
// gradually degenerates to the normal secondary index access with a tighter
// limit, such a limit can lower storage consumption."
//
// Sweeps max_secondary_pointers and reports secondary-index size vs Query 3
// runtime under tailored access.
#include "bench_util.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(/*with_publications=*/true);
  const double qt = 0.3;

  PrintTitle(
      "Ablation: secondary-index pointer limit (Query 3, tailored access, "
      "QT=0.3)");
  std::printf("# publications=%zu  country=%s\n", d.publications.size(),
              d.mid_country.c_str());
  std::printf("%-8s %14s %16s %7s\n", "limit", "sec size[MB]", "tailored[s]",
              "rows");
  for (int limit : {1, 2, 3, 5, 10}) {
    storage::DbEnv env(32ull << 20, DeviceFromFlags());
    core::UpiOptions opt = PublicationUpiOptions(0.1);
    opt.max_secondary_pointers = limit;
    auto upi = core::Upi::Build(&env, "pub",
                                datagen::DblpGenerator::PublicationSchema(), opt,
                                {datagen::PublicationCols::kCountry},
                                d.publications)
                   .ValueOrDie();
    QueryCost cost = RunCold(&env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(upi->QueryBySecondary(datagen::PublicationCols::kCountry,
                                    d.mid_country, qt,
                                    core::SecondaryAccessMode::kTailored, &out));
      return out.size();
    });
    double sec_mb =
        static_cast<double>(
            upi->secondary(datagen::PublicationCols::kCountry)->size_bytes()) /
        (1024.0 * 1024.0);
    std::printf("%-8d %14.2f %16.3f %7zu\n", limit, sec_mb,
                cost.sim_ms / 1000.0, cost.rows);
  }
  return 0;
}
