// Maintenance policy sweep: what the paper leaves to the DBA ("the DBA has
// to carefully decide how often to merge, trading off the merging cost with
// the expected query speedup", Section 4.3), decided by the cost model.
//
// A mixed workload — rounds of inserts (watermark-flushed by the
// MaintenanceManager in synchronous mode) interleaved with cold PTQs — runs
// under several merge policies:
//
//   never-merge   flushes only; the per-query fracture tax
//                 Nfrac * (Costinit + H*Tseek) grows linearly all run
//   every-flush   full MergeAll after every flush: queries always see one
//                 fracture, but each merge rereads and rewrites the database
//   model@f/d     the cost-model policy: partial merge when the fracture tax
//                 exceeds fraction f of predicted query cost, full merge past
//                 deterioration d
//
// Expected shape (the Figure 9 / Table 8 trade-off): both extremes lose —
// never-merge on query tax, every-flush on merge I/O — and a cost-model
// setting in between wins total simulated time.
#include "bench_util.h"
#include "maintenance/manager.h"

using namespace upi;
using namespace upi::bench;

namespace {

struct RunResult {
  double total_ms = 0;
  double query_ms = 0;
  double flush_ms = 0;
  double merge_ms = 0;
  uint64_t flushes = 0;
  uint64_t partials = 0;
  uint64_t fulls = 0;
  size_t final_nfrac = 0;
  size_t rows = 0;  // sanity: identical across policies
};

RunResult RunWorkload(const DblpData& d, maintenance::MergePolicyOptions policy,
                      int rounds, int queries_per_round) {
  storage::DbEnv env(32ull << 20, DeviceFromFlags());
  core::FracturedUpi fractured(&env, "author",
                               datagen::DblpGenerator::AuthorSchema(),
                               AuthorUpiOptions(0.1), {});
  CheckOk(fractured.BuildMain(d.authors));

  maintenance::MaintenanceManagerOptions mopt;
  mopt.num_workers = 0;  // synchronous: simulated time stays deterministic
  mopt.policy = policy;
  maintenance::MaintenanceManager mgr(&env, mopt);
  mgr.Register(&fractured);

  datagen::DblpGenerator gen(d.cfg);  // same seed: identical insert stream
  (void)gen.GenerateAuthors();
  catalog::TupleId next_id = d.cfg.num_authors + 1;
  const size_t batch = d.authors.size() / 20;
  const double qt = 0.1;

  RunResult r;
  sim::StatsWindow total(env.disk());
  for (int round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < batch; ++i) {
      CheckOk(fractured.Insert(gen.MakeAuthor(next_id++)));
      mgr.NotifyWrite(&fractured);
      mgr.RunPending();
    }
    for (int q = 0; q < queries_per_round; ++q) {
      const std::string& value =
          q % 2 == 0 ? d.popular_institution : d.selective_institution;
      QueryCost cost = RunCold(&env, [&]() -> size_t {
        std::vector<core::PtqMatch> out;
        CheckOk(fractured.QueryPtq(value, qt, &out));
        return out.size();
      });
      r.query_ms += cost.sim_ms;
      r.rows += cost.rows;
    }
  }
  CheckOk(mgr.last_error());
  r.total_ms = total.ElapsedMs();
  maintenance::MaintenanceStats stats = mgr.stats();
  r.flush_ms = stats.flush_sim_ms;
  r.merge_ms = stats.merge_sim_ms;
  r.flushes = stats.flushes;
  r.partials = stats.partial_merges;
  r.fulls = stats.full_merges;
  r.final_nfrac = fractured.num_fractures();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(false);
  const int rounds = static_cast<int>(flags::GetInt64("rounds", 12));
  // Enough reads per round that repaying the fracture tax matters; drop
  // --queries toward 1 to see never-merge win (a write-mostly workload
  // genuinely shouldn't merge — that's the trade-off, not a policy failure).
  const int queries = static_cast<int>(flags::GetInt64("queries", 8));

  PrintTitle("Maintenance policy sweep: mixed insert/PTQ workload");
  std::printf("# %d rounds x (%zu inserts + %d cold PTQs); watermark flush at "
              "%zu buffered tuples\n",
              rounds, d.authors.size() / 20, queries, d.authors.size() / 25);
  std::printf("%-14s %9s %9s %9s %9s %5s %4s %4s %6s %8s\n", "policy",
              "total[s]", "query[s]", "flush[s]", "merge[s]", "flush", "pm",
              "fm", "Nfrac", "rows");

  auto base_policy = [&] {
    maintenance::MergePolicyOptions p;
    p.flush_max_buffered_tuples = d.authors.size() / 25;
    p.reference_value = d.popular_institution;
    p.reference_qt = 0.1;
    return p;
  };

  struct Config {
    std::string name;
    maintenance::MergePolicyOptions policy;
  };
  std::vector<Config> configs;
  {
    maintenance::MergePolicyOptions p = base_policy();
    p.merges_enabled = false;
    configs.push_back({"never-merge", p});
  }
  {
    maintenance::MergePolicyOptions p = base_policy();
    p.full_merge_deterioration = 0.0;  // any fracture: merge everything
    configs.push_back({"every-flush", p});
  }
  for (double fraction : {0.25, 0.5, 0.75}) {
    maintenance::MergePolicyOptions p = base_policy();
    p.partial_merge_overhead_fraction = fraction;
    p.full_merge_deterioration = 3.0;
    char name[32];
    std::snprintf(name, sizeof(name), "model@%.2f/3", fraction);
    configs.push_back({name, p});
  }

  double never_total = 0, every_total = 0, best_model = -1;
  std::string best_name;
  for (const Config& cfg : configs) {
    RunResult r = RunWorkload(d, cfg.policy, rounds, queries);
    std::printf("%-14s %9.1f %9.1f %9.1f %9.1f %5llu %4llu %4llu %6zu %8zu\n",
                cfg.name.c_str(), r.total_ms / 1000.0, r.query_ms / 1000.0,
                r.flush_ms / 1000.0, r.merge_ms / 1000.0,
                static_cast<unsigned long long>(r.flushes),
                static_cast<unsigned long long>(r.partials),
                static_cast<unsigned long long>(r.fulls), r.final_nfrac,
                r.rows);
    if (cfg.name == "never-merge") {
      never_total = r.total_ms;
    } else if (cfg.name == "every-flush") {
      every_total = r.total_ms;
    } else if (best_model < 0 || r.total_ms < best_model) {
      best_model = r.total_ms;
      best_name = cfg.name;
    }
  }
  bool wins = best_model < never_total && best_model < every_total;
  std::printf("# best cost-model setting: %s (%.1fs) vs never-merge %.1fs, "
              "every-flush %.1fs -> %s\n",
              best_name.c_str(), best_model / 1000.0, never_total / 1000.0,
              every_total / 1000.0,
              wins ? "policy wins both extremes" : "NO WIN (tune thresholds)");
  return wins ? 0 : 1;
}
