// Table 7: Maintenance cost — "we randomly delete 1% of the tuples from the
// DBLP Author table and randomly insert new tuples equal to 10% of the
// existing tuples", on an unclustered table, a UPI, and a Fractured UPI.
// Expected shape: UPI far worse on both (random B+Tree I/O); Fractured UPI
// cheapest, with deletions nearly free (delete-set append).
//
// The fractured leg runs under the MaintenanceManager in synchronous mode:
// writers call NotifyWrite after each insert/delete, watermark flushes fire
// through RunPending (deterministic, no threads), and a final ScheduleFlush
// drains the tail — the paper's "flushed at the end" protocol, automated.
#include "bench_util.h"
#include "maintenance/manager.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(false);
  const double cutoff = 0.1;

  storage::DbEnv heap_env(32ull << 20, DeviceFromFlags());
  storage::DbEnv upi_env(32ull << 20, DeviceFromFlags());
  storage::DbEnv frac_env(32ull << 20, DeviceFromFlags());
  auto table = baseline::UnclusteredTable::Build(
                   &heap_env, "author", datagen::DblpGenerator::AuthorSchema(),
                   {datagen::AuthorCols::kInstitution}, d.authors)
                   .ValueOrDie();
  auto upi = core::Upi::Build(&upi_env, "author",
                              datagen::DblpGenerator::AuthorSchema(),
                              AuthorUpiOptions(cutoff), {}, d.authors)
                 .ValueOrDie();
  core::FracturedUpi fractured(&frac_env, "author",
                               datagen::DblpGenerator::AuthorSchema(),
                               AuthorUpiOptions(cutoff), {});
  CheckOk(fractured.BuildMain(d.authors));

  // Shared workload.
  Rng rng(d.cfg.seed + 7);
  std::vector<catalog::Tuple> victims;
  size_t delete_count = d.authors.size() / 100;
  for (const auto& t : d.authors) {
    if (victims.size() >= delete_count) break;
    if (rng.Bernoulli(0.02)) victims.push_back(t);
  }
  std::vector<catalog::Tuple> inserts;
  catalog::TupleId next_id = d.cfg.num_authors + 1;
  for (size_t i = 0; i < d.authors.size() / 10; ++i) {
    inserts.push_back(d.gen->MakeAuthor(next_id++));
  }

  PrintTitle("Table 7: Maintenance cost (simulated seconds)");
  std::printf("# authors=%zu: insert %zu tuples (10%%), delete %zu (1%%)\n",
              d.authors.size(), inserts.size(), victims.size());
  std::printf("%-15s %12s %12s\n", "system", "Insert[s]", "Delete[s]");

  {
    QueryCost ins = RunMaintenance(&heap_env, [&]() -> size_t {
      for (const auto& t : inserts) CheckOk(table->Insert(t));
      return inserts.size();
    });
    QueryCost del = RunMaintenance(&heap_env, [&]() -> size_t {
      for (const auto& t : victims) CheckOk(table->Delete(t.id()));
      return victims.size();
    });
    std::printf("%-15s %12.1f %12.2f\n", "Unclustered", ins.sim_ms / 1000.0,
                del.sim_ms / 1000.0);
  }
  {
    QueryCost ins = RunMaintenance(&upi_env, [&]() -> size_t {
      for (const auto& t : inserts) CheckOk(upi->Insert(t));
      return inserts.size();
    });
    QueryCost del = RunMaintenance(&upi_env, [&]() -> size_t {
      for (const auto& t : victims) CheckOk(upi->Delete(t));
      return victims.size();
    });
    std::printf("%-15s %12.1f %12.2f\n", "UPI", ins.sim_ms / 1000.0,
                del.sim_ms / 1000.0);
  }
  {
    maintenance::MaintenanceManagerOptions mopt;
    mopt.num_workers = 0;  // synchronous: RunPending keeps sim time exact
    // A quarter of the batch per fracture: the manager flushes mid-stream
    // (watermark) instead of the paper's single hand-rolled flush at the end;
    // merging is left off so the measured cost is pure maintenance I/O.
    mopt.policy.flush_max_buffered_tuples = inserts.size() / 4 + 1;
    mopt.policy.merges_enabled = false;
    maintenance::MaintenanceManager mgr(&frac_env, mopt);
    mgr.Register(&fractured);

    QueryCost ins = RunMaintenance(&frac_env, [&]() -> size_t {
      for (const auto& t : inserts) {
        CheckOk(fractured.Insert(t));
        mgr.NotifyWrite(&fractured);
        mgr.RunPending();
      }
      mgr.ScheduleFlush(&fractured);  // drain the tail
      mgr.RunPending();
      return inserts.size();
    });
    QueryCost del = RunMaintenance(&frac_env, [&]() -> size_t {
      for (const auto& t : victims) {
        CheckOk(fractured.Delete(t.id()));
        mgr.NotifyWrite(&fractured);
        mgr.RunPending();
      }
      mgr.ScheduleFlush(&fractured);
      mgr.RunPending();
      return victims.size();
    });
    CheckOk(mgr.last_error());
    std::printf("%-15s %12.1f %12.2f\n", "Fractured UPI", ins.sim_ms / 1000.0,
                del.sim_ms / 1000.0);
    std::printf("# maintenance manager: %llu flushes, %.1fs simulated flush "
                "time, %zu fractures\n",
                static_cast<unsigned long long>(mgr.stats().flushes),
                mgr.stats().flush_sim_ms / 1000.0, fractured.num_fractures());
  }
  return 0;
}
