// Figure 3: Cutoff Index real runtime.
//
// Query 1 (SELECT * FROM Author WHERE Institution = v, confidence >= QT) for
// a non-selective value (the dataset's "MIT") and a selective one (~300
// matches), with QT in {0.05, 0.15, 0.25} and the cutoff threshold C swept
// over [0, 0.5]. Expected shape (paper Section 6.3):
//  * QT >= C: fast, pure sequential heap scan;
//  * QT <  C: slower — cutoff-pointer chasing;
//  * non-selective query saturates: for large C the three QT curves converge
//    (the sorted pointer sweep touches nearly every page either way);
//  * selective query does not saturate.
#include "bench_util.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(/*with_publications=*/false);
  const std::vector<double> cutoffs = {0.0,  0.05, 0.1, 0.15, 0.2, 0.25,
                                       0.3,  0.35, 0.4, 0.45, 0.5};
  const std::vector<double> qts = {0.05, 0.15, 0.25};

  PrintTitle("Figure 3: Cutoff Index real runtime (Query 1), simulated seconds");
  std::printf("# authors=%zu  non-selective=%s  selective=%s\n",
              d.authors.size(), d.popular_institution.c_str(),
              d.selective_institution.c_str());
  std::printf("%-6s %-10s", "C", "query");
  for (double qt : qts) std::printf(" QT=%-11.2f", qt);
  std::printf("\n");

  for (double c : cutoffs) {
    storage::DbEnv env(32ull << 20, DeviceFromFlags());
    core::UpiOptions opt = AuthorUpiOptions(c);
    // Figure 3 validates the Cost_cut model, whose 2*(Costinit + H*Tseek)
    // term includes per-query opens of the heap and cutoff files; charge
    // them here so Figure 12's estimates are directly comparable.
    opt.charge_open_per_query = true;
    auto upi = core::Upi::Build(&env, "author",
                                datagen::DblpGenerator::AuthorSchema(), opt, {},
                                d.authors)
                   .ValueOrDie();
    for (const auto& [label, value] :
         {std::pair<const char*, std::string>{"nonsel", d.popular_institution},
          {"select", d.selective_institution}}) {
      std::printf("%-6.2f %-10s", c, label);
      for (double qt : qts) {
        QueryCost cost = RunCold(&env, [&]() -> size_t {
          std::vector<core::PtqMatch> out;
          CheckOk(upi->QueryPtq(value, qt, &out));
          return out.size();
        });
        std::printf(" %7.3fs/%4zu", cost.sim_ms / 1000.0, cost.rows);
      }
      std::printf("\n");
    }
    // Per-device totals via the engine's snapshot API (the deprecated
    // DiskStats::ToString replacement); opt-in so default rows stay
    // bit-identical.
    if (flags::GetBool("metrics", false)) {
      obs::MetricsSnapshot snap = env.metrics()->Snapshot();
      std::printf("# metrics C=%.2f: reads=%.0f seeks=%.0f seek_ms=%.1f "
                  "opens=%.0f sim_ms=%.1f\n",
                  c, snap.SumOf("upi_disk_reads_total"),
                  snap.SumOf("upi_disk_seeks_total"),
                  snap.SumOf("upi_disk_seek_ms_total"),
                  snap.SumOf("upi_disk_file_opens_total"),
                  snap.SumOf("upi_disk_sim_ms_total"));
    }
  }
  return 0;
}
