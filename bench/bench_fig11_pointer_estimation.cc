// Figure 11: number of cutoff pointers — real vs. histogram estimate — for
// various (QT, C) combinations with QT < C (the Section 6.1 selectivity
// estimation validation). Expected shape: estimates track truth closely.
#include "bench_util.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(false);

  PrintTitle("Figure 11: #cutoff pointers, real vs estimated (Query 1)");
  std::printf("# authors=%zu  value=%s\n", d.authors.size(),
              d.popular_institution.c_str());
  std::printf("%-6s %-6s %10s %12s %9s\n", "QT", "C", "real", "estimated",
              "err%%");
  for (double c : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    storage::DbEnv env(32ull << 20, DeviceFromFlags());
    auto upi = core::Upi::Build(&env, "author",
                                datagen::DblpGenerator::AuthorSchema(),
                                AuthorUpiOptions(c), {}, d.authors)
                   .ValueOrDie();
    // 0.12 sits off the histogram's bucket grid, exercising interpolation.
    for (double qt : {0.05, 0.12, 0.15, 0.25}) {
      if (qt >= c) continue;
      std::vector<core::CutoffIndex::PointerEntry> pointers;
      CheckOk(upi->cutoff_index()->CollectPointers(d.popular_institution, qt,
                                                   &pointers));
      double real = static_cast<double>(pointers.size());
      double est = upi->EstimatePtq(d.popular_institution, qt).cutoff_pointers;
      double err = real > 0 ? 100.0 * (est - real) / real : 0.0;
      std::printf("%-6.2f %-6.2f %10.0f %12.1f %8.1f%%\n", qt, c, real, est, err);
    }
  }
  return 0;
}
