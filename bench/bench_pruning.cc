// Fracture pruning: how much of the Section 4.2 fan-out tax the per-fracture
// summaries (zone maps + Bloom fences + max-probability cutoffs) repay.
//
// The workload models partitioned ingest — the case LSM-style pruning is
// built for: each delta fracture holds a contiguous, mostly-disjoint slice of
// the key space (a sensor field, a tenant, a time window), so a point query
// matches one or two fractures and the rest are pure tax. For Nfrac in
// {1, 4, 16, 64} the bench builds one fractured table and measures, with
// pruning ON and OFF on the *same* table (the UpiOptions::enable_pruning
// knob only gates consulting the summaries, never the rows):
//
//   point-ptq    PTQ for a value living in exactly one delta fracture
//   sec-exact    exact-match secondary probe for a value in one delta
//   high-qt-ptq  PTQ whose threshold exceeds every delta's max probability
//                (only the main fracture can answer: the cutoff-summary skip)
//
// reporting simulated page reads, seeks, and simulated ms per query. Rows
// are bit-identical between the two modes (asserted every query); only the
// I/O differs. --json rows carry pages/seeks in the config string so
// BENCH_pruning.json tracks the pruning trajectory across commits.
//
//   ./bench_pruning [--tuples_per_frac=400] [--seed=42]
//                   [--json=BENCH_pruning.json] [--smoke]
//
// --smoke runs only the Nfrac=16 point and exits non-zero unless pruning
// reads <= 1/3 of no-pruning's simulated pages on the point PTQ and the
// high-qt PTQ probes only the main fracture — the CI gate.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fractured_upi.h"

using namespace upi;
using namespace upi::bench;

namespace {

constexpr int kInst = datagen::AuthorCols::kInstitution;
constexpr int kCountry = datagen::AuthorCols::kCountry;

/// One synthetic author whose institution lives in partition slot `key` and
/// whose country mirrors it coarsely (so the secondary index partitions
/// too). `lo_prob` tuples carry a low existence, capping every combined
/// probability — the high-qt cutoff-summary scenario.
catalog::Tuple MakeTuple(catalog::TupleId id, uint64_t key, uint64_t country,
                         bool lo_prob, Rng* rng) {
  char inst[32], ctry[32];
  std::snprintf(inst, sizeof(inst), "part%06llu",
                static_cast<unsigned long long>(key));
  std::snprintf(ctry, sizeof(ctry), "region%04llu",
                static_cast<unsigned long long>(country));
  double existence = lo_prob ? 0.30 : 0.85 + 0.1 * rng->NextDouble();
  std::vector<prob::Alternative> alts;
  alts.push_back({inst, 0.8});
  char alt2[32];
  std::snprintf(alt2, sizeof(alt2), "part%06llu",
                static_cast<unsigned long long>(key + 1));
  alts.push_back({alt2, 0.2});
  std::vector<catalog::Value> values(4);
  values[datagen::AuthorCols::kName] =
      catalog::Value::String("n" + std::to_string(id));
  values[kInst] = catalog::Value::Discrete(
      prob::DiscreteDistribution::Make(std::move(alts)).ValueOrDie());
  values[kCountry] = catalog::Value::Discrete(
      prob::DiscreteDistribution::Make({{ctry, 1.0}}).ValueOrDie());
  values[datagen::AuthorCols::kPayload] =
      catalog::Value::String(std::string(120, 'x'));
  return catalog::Tuple(id, existence, values);
}

struct QueryIo {
  double sim_ms = 0.0;
  uint64_t pages = 0;  // simulated page reads
  uint64_t seeks = 0;
  size_t rows = 0;
};

QueryIo Measure(storage::DbEnv* env, const std::function<size_t()>& fn) {
  env->ColdCache();
  sim::StatsWindow window(env->disk());
  QueryIo io;
  io.rows = fn();
  sim::DiskStats d = window.Delta();
  io.sim_ms = d.SimMs(env->params());
  io.pages = d.reads;
  io.seeks = d.seeks;
  return io;
}

std::string RowKey(const std::vector<core::PtqMatch>& rows) {
  std::string key;
  for (const auto& m : rows) {
    key += std::to_string(m.id) + ":" + std::to_string(m.confidence) + ";";
  }
  return key;
}

}  // namespace

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  const bool smoke = flags::GetBool("smoke", false);
  const uint64_t seed = static_cast<uint64_t>(flags::GetInt64("seed", 42));
  const size_t per_frac =
      static_cast<size_t>(flags::GetInt64("tuples_per_frac", 400));
  const std::vector<size_t> nfracs =
      smoke ? std::vector<size_t>{16} : std::vector<size_t>{1, 4, 16, 64};

  PrintTitle("Fracture pruning: fan-out tax repaid by zone/Bloom/cutoff summaries");
  std::printf("%-8s %-12s %-9s %10s %8s %8s %7s %9s\n", "nfrac", "query",
              "pruning", "sim_ms", "pages", "seeks", "rows", "probed");
  JsonWriter json("pruning");

  bool gate_ok = true;
  for (size_t nfrac : nfracs) {
    Rng rng(seed);
    storage::DbEnv env(256ull << 20, DeviceFromFlags());
    core::UpiOptions opt;
    opt.cluster_column = kInst;
    opt.cutoff = 0.1;
    core::FracturedUpi table(&env, "sensors",
                             datagen::DblpGenerator::AuthorSchema(), opt,
                             {kCountry});
    // Main fracture: slots [0, per_frac) at full probability; each delta d
    // covers [d * per_frac, (d+1) * per_frac) with *low-existence* tuples,
    // so every delta's max combined probability stays below 0.30.
    catalog::TupleId next_id = 1;
    {
      std::vector<catalog::Tuple> tuples;
      for (size_t i = 0; i < per_frac; ++i) {
        tuples.push_back(MakeTuple(next_id++, i, i / 50, false, &rng));
      }
      CheckOk(table.BuildMain(tuples));
    }
    for (size_t d = 1; d < nfrac; ++d) {
      for (size_t i = 0; i < per_frac; ++i) {
        uint64_t slot = d * per_frac + i;
        CheckOk(table.Insert(
            MakeTuple(next_id++, slot, slot / 50, /*lo_prob=*/true, &rng)));
      }
      CheckOk(table.FlushBuffer());
    }
    env.pool()->FlushAll();

    // Probe values: the middle of the last delta (point + secondary), and a
    // main-fracture value at a threshold above every delta's max probability.
    size_t last = (nfrac - 1) * per_frac + per_frac / 2;
    char point_value[32], sec_value[32], main_value[32];
    std::snprintf(point_value, sizeof(point_value), "part%06llu",
                  static_cast<unsigned long long>(last));
    std::snprintf(sec_value, sizeof(sec_value), "region%04llu",
                  static_cast<unsigned long long>(last / 50));
    std::snprintf(main_value, sizeof(main_value), "part%06llu",
                  static_cast<unsigned long long>(per_frac / 2));

    struct Spec {
      const char* name;
      std::function<Status(std::vector<core::PtqMatch>*)> run;
    };
    std::vector<Spec> specs = {
        {"point-ptq",
         [&](std::vector<core::PtqMatch>* out) {
           return table.QueryPtq(point_value, 0.1, out);
         }},
        {"sec-exact",
         [&](std::vector<core::PtqMatch>* out) {
           return table.QueryBySecondary(kCountry, sec_value, 0.2,
                                         core::SecondaryAccessMode::kTailored,
                                         out);
         }},
        {"high-qt-ptq",
         [&](std::vector<core::PtqMatch>* out) {
           // Threshold above every delta's max existence (0.30): only the
           // main fracture can hold a qualifying row.
           return table.QueryPtq(main_value, 0.5, out);
         }},
    };

    std::map<std::string, QueryIo> on_io;
    for (const Spec& spec : specs) {
      std::string rows_on, rows_off;
      for (bool pruning : {true, false}) {
        table.mutable_options()->enable_pruning = pruning;
        uint64_t probed0 = table.fractures_probed_total();
        std::vector<core::PtqMatch> rows;
        QueryIo io = Measure(&env, [&] {
          CheckOk(spec.run(&rows));
          return rows.size();
        });
        uint64_t probed = table.fractures_probed_total() - probed0;
        (pruning ? rows_on : rows_off) = RowKey(rows);
        if (pruning) on_io[spec.name] = io;
        std::printf("%-8zu %-12s %-9s %10.2f %8llu %8llu %7zu %6llu/%zu\n",
                    nfrac, spec.name, pruning ? "on" : "off", io.sim_ms,
                    static_cast<unsigned long long>(io.pages),
                    static_cast<unsigned long long>(io.seeks), io.rows,
                    static_cast<unsigned long long>(probed), nfrac);
        char config[96];
        std::snprintf(config, sizeof(config),
                      "nfrac=%zu q=%s pruning=%s pages=%llu seeks=%llu",
                      nfrac, spec.name, pruning ? "on" : "off",
                      static_cast<unsigned long long>(io.pages),
                      static_cast<unsigned long long>(io.seeks));
        QueryCost cost;
        cost.sim_ms = io.sim_ms;
        cost.rows = io.rows;
        json.AddRow(config, cost);
        if (!pruning) {
          // The acceptance bar: pruning must not change a single row, and at
          // 16 fractures the point PTQ must read <= 1/3 of the pages.
          if (rows_on != rows_off) {
            std::printf("FAIL: pruning changed result rows (%s)\n", spec.name);
            gate_ok = false;
          }
          if (nfrac == 16 && std::string(spec.name) == "point-ptq" &&
              on_io[spec.name].pages * 3 > io.pages) {
            std::printf("FAIL: point-ptq with pruning read %llu pages, "
                        "no-pruning %llu (want <= 1/3)\n",
                        static_cast<unsigned long long>(on_io[spec.name].pages),
                        static_cast<unsigned long long>(io.pages));
            gate_ok = false;
          }
        }
      }
    }
    table.mutable_options()->enable_pruning = true;

    // The cutoff-summary skip, pinned: the high-qt PTQ probes only main.
    core::PruneSet set = table.ForQuery(-1, main_value, 0.5);
    if (nfrac > 1 && (set.probed != 1 || !set.probe[0])) {
      std::printf("FAIL: high-qt PTQ probed %zu fractures (want main only)\n",
                  set.probed);
      gate_ok = false;
    }
  }
  if (!gate_ok) return 1;
  return 0;
}
