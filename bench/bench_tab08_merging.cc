// Table 8: Merging cost — three successive merge rounds; each round adds
// five update batches (+10% inserts, -1% deletes each) and then merges all
// fractures. Expected shape: merge time ~ sequential read + write of the
// whole database (the Section 6.2 Costmerge), growing with DB size.
#include "bench_util.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(false);

  storage::DbEnv env(32ull << 20, DeviceFromFlags());
  core::FracturedUpi fractured(&env, "author",
                               datagen::DblpGenerator::AuthorSchema(),
                               AuthorUpiOptions(0.1), {});
  CheckOk(fractured.BuildMain(d.authors));
  catalog::TupleId next_id = d.cfg.num_authors + 1;
  std::unordered_map<catalog::TupleId, catalog::Tuple> live;
  for (const auto& t : d.authors) live.emplace(t.id(), t);
  Rng rng(d.cfg.seed + 3);

  PrintTitle("Table 8: Merging cost");
  std::printf("%-3s %12s %14s %14s %9s\n", "#", "Time[s]", "DBsize[MB]",
              "model[s]", "Nfrac");

  for (int round = 1; round <= 3; ++round) {
    for (int batch = 0; batch < 5; ++batch) {
      size_t deletes = live.size() / 100;
      size_t done = 0;
      for (auto it = live.begin(); it != live.end() && done < deletes;) {
        if (rng.Bernoulli(0.02)) {
          CheckOk(fractured.Delete(it->first));
          it = live.erase(it);
          ++done;
        } else {
          ++it;
        }
      }
      for (size_t i = 0; i < d.authors.size() / 10; ++i) {
        catalog::Tuple t = d.gen->MakeAuthor(next_id++);
        CheckOk(fractured.Insert(t));
        live.emplace(t.id(), t);
      }
      CheckOk(fractured.FlushBuffer());
    }
    size_t nfrac = fractured.num_fractures();
    core::CostModel model(env.params(), core::TableStats::Of(fractured));
    double model_s = model.MergeMs() / 1000.0;
    QueryCost merge = RunMaintenance(&env, [&]() -> size_t {
      CheckOk(fractured.MergeAll());
      return 1;
    });
    std::printf("%-3d %12.1f %14.1f %14.1f %9zu\n", round,
                merge.sim_ms / 1000.0,
                static_cast<double>(fractured.size_bytes()) / (1024.0 * 1024.0),
                model_s, nfrac);
  }
  return 0;
}
