// Ablation: partial vs. full merging (Section 4.3: "One option is to only
// merge a few fractures at a time. Still, the DBA has to carefully decide how
// often to merge, trading off the merging cost with the expected query
// speedup.")
//
// Accumulates 8 delta fractures, then compares: no merge, partial merge of
// the 4 oldest deltas, a full merge, and the MaintenanceManager's cost-model
// policy deciding for itself (synchronous mode; it may chain several partial
// merges until the predicted fracture tax drops below its threshold) —
// reporting merge cost and the resulting Q1 runtime.
#include "bench_util.h"
#include "maintenance/manager.h"

using namespace upi;
using namespace upi::bench;

namespace {

void BuildWithDeltas(core::FracturedUpi* fractured, const DblpData& d,
                     int deltas) {
  CheckOk(fractured->BuildMain(d.authors));
  datagen::DblpGenerator gen(d.cfg);  // same seed: identical deltas every run
  (void)gen.GenerateAuthors();        // advance past the base tuples
  catalog::TupleId next_id = d.cfg.num_authors + 1;
  for (int b = 0; b < deltas; ++b) {
    for (size_t i = 0; i < d.authors.size() / 20; ++i) {
      CheckOk(fractured->Insert(gen.MakeAuthor(next_id++)));
    }
    CheckOk(fractured->FlushBuffer());
  }
}

}  // namespace

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(false);
  const double qt = 0.1;

  PrintTitle("Ablation: partial vs full merge (8 delta fractures)");
  std::printf("%-14s %12s %9s %12s\n", "strategy", "merge[s]", "Nfrac",
              "Q1[s]");

  for (const char* strategy : {"none", "partial4", "full", "policy"}) {
    storage::DbEnv env(32ull << 20, DeviceFromFlags());
    core::FracturedUpi fractured(&env, "author",
                                 datagen::DblpGenerator::AuthorSchema(),
                                 AuthorUpiOptions(0.1), {});
    BuildWithDeltas(&fractured, d, 8);
    QueryCost merge_cost{};
    if (std::string(strategy) == "partial4") {
      merge_cost = RunMaintenance(&env, [&]() -> size_t {
        CheckOk(fractured.MergeOldestFractures(4));
        return 1;
      });
    } else if (std::string(strategy) == "full") {
      merge_cost = RunMaintenance(&env, [&]() -> size_t {
        CheckOk(fractured.MergeAll());
        return 1;
      });
    } else if (std::string(strategy) == "policy") {
      maintenance::MaintenanceManagerOptions mopt;
      mopt.num_workers = 0;
      mopt.policy.reference_value = d.popular_institution;
      mopt.policy.reference_qt = qt;
      maintenance::MaintenanceManager mgr(&env, mopt);
      mgr.Register(&fractured);
      merge_cost = RunMaintenance(&env, [&]() -> size_t {
        // An (empty) forced flush kicks the policy re-check; follow-up
        // merges chain until the model is satisfied.
        mgr.ScheduleFlush(&fractured);
        return mgr.RunPending();
      });
      CheckOk(mgr.last_error());
    }
    QueryCost q = RunCold(&env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(fractured.QueryPtq(d.popular_institution, qt, &out));
      return out.size();
    });
    std::printf("%-14s %12.1f %9zu %12.3f\n", strategy,
                merge_cost.sim_ms / 1000.0, fractured.num_fractures(),
                q.sim_ms / 1000.0);
  }
  return 0;
}
