// Figure 4: Query 1 runtime, PII vs UPI, QT swept 0.1..0.9, C = 0.1.
//
// Expected shape: both get faster as QT rises (less data); the UPI is
// 20-100x faster because it answers with one seek plus a sequential scan
// while PII random-seeks the heap per qualifying tuple.
//
// Both tables are built and queried through the engine's Database facade
// (separate databases so each side keeps its own cold cache, as the paper's
// per-design measurements do).
#include "bench_util.h"
#include "engine/database.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(false);

  engine::DatabaseOptions dbopts;
  dbopts.device = DeviceFromFlags();
  engine::Database pii_db(dbopts);
  engine::Table* table =
      pii_db
          .CreateUnclusteredTable("author",
                                  datagen::DblpGenerator::AuthorSchema(),
                                  datagen::AuthorCols::kInstitution,
                                  {datagen::AuthorCols::kInstitution}, d.authors)
          .ValueOrDie();
  engine::Database upi_db(dbopts);
  engine::Table* upi =
      upi_db
          .CreateUpiTable("author", datagen::DblpGenerator::AuthorSchema(),
                          AuthorUpiOptions(0.1), {}, d.authors)
          .ValueOrDie();

  PrintTitle("Figure 4: Query 1 runtime (simulated seconds), C=0.1");
  std::printf("# authors=%zu  value=%s\n", d.authors.size(),
              d.popular_institution.c_str());
  std::printf("%-6s %12s %12s %9s %6s %12s\n", "QT", "PII[s]", "UPI[s]",
              "speedup", "rows", "wall(UPI)ms");
  for (double qt = 0.1; qt <= 0.91; qt += 0.1) {
    QueryCost pii = RunCold(pii_db.env(), [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(table->path()->QueryPtq(d.popular_institution, qt, &out));
      return out.size();
    });
    QueryCost upic = RunCold(upi_db.env(), [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(upi->path()->QueryPtq(d.popular_institution, qt, &out));
      return out.size();
    });
    std::printf("%-6.1f %12.3f %12.3f %8.1fx %6zu %12.1f\n", qt,
                pii.sim_ms / 1000.0, upic.sim_ms / 1000.0,
                pii.sim_ms / upic.sim_ms, upic.rows, upic.wall_ms);
  }
  // Per-side device totals via the engine's snapshot API (the deprecated
  // DiskStats::ToString replacement); opt-in so default rows stay
  // bit-identical.
  if (flags::GetBool("metrics", false)) {
    for (const auto& [label, dbp] :
         {std::pair<const char*, engine::Database*>{"pii", &pii_db},
          {"upi", &upi_db}}) {
      obs::MetricsSnapshot snap = dbp->MetricsSnapshot();
      std::printf("# metrics %s: reads=%.0f seeks=%.0f seek_ms=%.1f "
                  "opens=%.0f sim_ms=%.1f\n",
                  label, snap.SumOf("upi_disk_reads_total"),
                  snap.SumOf("upi_disk_seeks_total"),
                  snap.SumOf("upi_disk_seek_ms_total"),
                  snap.SumOf("upi_disk_file_opens_total"),
                  snap.SumOf("upi_disk_sim_ms_total"));
    }
  }
  return 0;
}
