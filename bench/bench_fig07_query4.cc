// Figure 7: Query 4 runtime — the spatial range query
//   SELECT * FROM CarObservation WHERE Distance(location, p) <= Radius
// at QT = 0.5, radius swept 100..1000 m: continuous UPI vs secondary U-Tree.
// Expected shape: the continuous UPI wins by ~50-60x because qualifying
// tuples are co-located with the R-Tree leaf order (sequential 64 KB heap
// pages) while the U-Tree random-seeks an unclustered heap.
#include "bench_util.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  CartelData d = MakeCartel();

  storage::DbEnv ut_env(32ull << 20, DeviceFromFlags());
  auto table = baseline::UnclusteredTable::Build(
                   &ut_env, "cars",
                   datagen::CartelGenerator::CarObservationSchema(), {},
                   d.observations)
                   .ValueOrDie();
  auto utree = baseline::SecondaryUtree::Build(&ut_env, "cars", *table,
                                               datagen::CarObsCols::kLocation,
                                               d.observations)
                   .ValueOrDie();
  storage::DbEnv upi_env(32ull << 20, DeviceFromFlags());
  core::ContinuousUpiOptions opt;
  opt.location_column = datagen::CarObsCols::kLocation;
  auto upi = core::ContinuousUpi::Build(
                 &upi_env, "cars",
                 datagen::CartelGenerator::CarObservationSchema(), opt, {},
                 d.observations)
                 .ValueOrDie();

  const int kCenters = 3;  // average over query centers, like repeated runs
  Rng rng(7);
  std::vector<prob::Point> centers;
  for (int i = 0; i < kCenters; ++i) centers.push_back(d.gen->RandomQueryCenter(&rng));

  PrintTitle("Figure 7: Query 4 runtime (simulated seconds), QT=0.5");
  std::printf("# observations=%zu, averaged over %d query centers\n",
              d.observations.size(), kCenters);
  std::printf("%-8s %12s %16s %9s %7s\n", "radius", "U-Tree[s]",
              "ContinuousUPI[s]", "speedup", "rows");
  for (double radius = 100; radius <= 1000.1; radius += 100) {
    double ut_ms = 0, upi_ms = 0;
    size_t rows = 0;
    for (const auto& c : centers) {
      QueryCost ut = RunCold(&ut_env, [&]() -> size_t {
        std::vector<core::PtqMatch> out;
        CheckOk(utree->QueryRange(*table, c, radius, 0.5, &out));
        return out.size();
      });
      QueryCost up = RunCold(&upi_env, [&]() -> size_t {
        std::vector<core::PtqMatch> out;
        CheckOk(upi->QueryRange(c, radius, 0.5, &out));
        return out.size();
      });
      ut_ms += ut.sim_ms;
      upi_ms += up.sim_ms;
      rows += up.rows;
    }
    ut_ms /= kCenters;
    upi_ms /= kCenters;
    std::printf("%-8.0f %12.3f %16.3f %8.1fx %7zu\n", radius, ut_ms / 1000.0,
                upi_ms / 1000.0, ut_ms / upi_ms, rows / kCenters);
  }
  return 0;
}
