// Figure 5: Query 2 runtime — the analytical aggregate
//   SELECT Journal, COUNT(*) FROM Publication
//   WHERE Institution = <popular> GROUP BY Journal, confidence >= QT
// PII vs UPI on the Publication table, C = 0.1.
#include "bench_util.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(/*with_publications=*/true);

  storage::DbEnv pii_env(32ull << 20, DeviceFromFlags());
  auto table = baseline::UnclusteredTable::Build(
                   &pii_env, "pub", datagen::DblpGenerator::PublicationSchema(),
                   {datagen::PublicationCols::kInstitution}, d.publications)
                   .ValueOrDie();
  storage::DbEnv upi_env(32ull << 20, DeviceFromFlags());
  auto upi = core::Upi::Build(&upi_env, "pub",
                              datagen::DblpGenerator::PublicationSchema(),
                              PublicationUpiOptions(0.1), {}, d.publications)
                 .ValueOrDie();

  PrintTitle("Figure 5: Query 2 runtime (simulated seconds), C=0.1");
  std::printf("# publications=%zu  value=%s\n", d.publications.size(),
              d.popular_institution.c_str());
  std::printf("%-6s %12s %12s %9s %7s %8s\n", "QT", "PII[s]", "UPI[s]",
              "speedup", "rows", "groups");
  for (double qt = 0.1; qt <= 0.91; qt += 0.1) {
    size_t groups = 0;
    QueryCost pii = RunCold(&pii_env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(table->QueryPii(datagen::PublicationCols::kInstitution,
                              d.popular_institution, qt, &out));
      groups = exec::GroupByCount(out, datagen::PublicationCols::kJournal).size();
      return out.size();
    });
    QueryCost upic = RunCold(&upi_env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(upi->QueryPtq(d.popular_institution, qt, &out));
      groups = exec::GroupByCount(out, datagen::PublicationCols::kJournal).size();
      return out.size();
    });
    std::printf("%-6.1f %12.3f %12.3f %8.1fx %7zu %8zu\n", qt,
                pii.sim_ms / 1000.0, upic.sim_ms / 1000.0,
                pii.sim_ms / upic.sim_ms, upic.rows, groups);
  }
  return 0;
}
