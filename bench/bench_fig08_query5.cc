// Figure 8: Query 5 runtime — the secondary attribute query
//   SELECT * FROM CarObservation WHERE Segment = <segment>, conf >= QT
// comparing a secondary index over the continuous UPI against PII on an
// unclustered heap, QT swept 0.1..0.8. Expected shape: big gap (up to ~180x
// in the paper) below QT=0.5 thanks to location/segment correlation — the
// UPI's heap pointers for one segment land on few neighboring 64 KB pages;
// smaller but still large gap for selective thresholds.
#include "bench_util.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  CartelData d = MakeCartel();

  storage::DbEnv pii_env(32ull << 20, DeviceFromFlags());
  auto table = baseline::UnclusteredTable::Build(
                   &pii_env, "cars",
                   datagen::CartelGenerator::CarObservationSchema(),
                   {datagen::CarObsCols::kSegment}, d.observations)
                   .ValueOrDie();
  storage::DbEnv upi_env(32ull << 20, DeviceFromFlags());
  core::ContinuousUpiOptions opt;
  opt.location_column = datagen::CarObsCols::kLocation;
  auto upi = core::ContinuousUpi::Build(
                 &upi_env, "cars",
                 datagen::CartelGenerator::CarObservationSchema(), opt,
                 {datagen::CarObsCols::kSegment}, d.observations)
                 .ValueOrDie();

  std::string segment = d.gen->MidSegment();
  PrintTitle("Figure 8: Query 5 runtime (simulated seconds)");
  std::printf("# observations=%zu  segment=%s\n", d.observations.size(),
              segment.c_str());
  std::printf("%-6s %18s %22s %9s %6s\n", "QT", "PII-on-heap[s]",
              "PII-on-ContinuousUPI[s]", "speedup", "rows");
  for (double qt = 0.1; qt <= 0.81; qt += 0.1) {
    QueryCost pii = RunCold(&pii_env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(table->QueryPii(datagen::CarObsCols::kSegment, segment, qt, &out));
      return out.size();
    });
    QueryCost up = RunCold(&upi_env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(upi->QueryBySecondary(datagen::CarObsCols::kSegment, segment, qt,
                                    &out));
      return out.size();
    });
    std::printf("%-6.1f %18.3f %22.3f %8.1fx %6zu\n", qt, pii.sim_ms / 1000.0,
                up.sim_ms / 1000.0, pii.sim_ms / up.sim_ms, up.rows);
  }
  return 0;
}
