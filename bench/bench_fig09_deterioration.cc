// Figure 9: Query 1 (C = QT = 0.1) deterioration under update batches.
//
// Each batch randomly deletes 1% of live tuples and inserts new tuples equal
// to 10% of the *original* table, applied identically to three systems:
// an unclustered heap (+PII), a non-fractured UPI (in-place B+Tree updates),
// and a Fractured UPI (one fracture per batch). Expected shape after 10
// batches (paper): unclustered ~4x slower, UPI ~40x (fragmentation), and
// Fractured UPI ~9x (per-fracture overhead) — but the fractured curve starts
// and stays far below the others.
#include "bench_util.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(false);
  const double qt = 0.1, cutoff = 0.1;
  const int batches = static_cast<int>(flags::GetInt64("batches", 10));

  storage::DbEnv heap_env(32ull << 20, DeviceFromFlags());
  storage::DbEnv upi_env(32ull << 20, DeviceFromFlags());
  storage::DbEnv frac_env(32ull << 20, DeviceFromFlags());
  auto table = baseline::UnclusteredTable::Build(
                   &heap_env, "author", datagen::DblpGenerator::AuthorSchema(),
                   {datagen::AuthorCols::kInstitution}, d.authors)
                   .ValueOrDie();
  auto upi = core::Upi::Build(&upi_env, "author",
                              datagen::DblpGenerator::AuthorSchema(),
                              AuthorUpiOptions(cutoff), {}, d.authors)
                 .ValueOrDie();
  core::FracturedUpi fractured(&frac_env, "author",
                               datagen::DblpGenerator::AuthorSchema(),
                               AuthorUpiOptions(cutoff), {});
  CheckOk(fractured.BuildMain(d.authors));

  std::unordered_map<catalog::TupleId, catalog::Tuple> live;
  for (const auto& t : d.authors) live.emplace(t.id(), t);
  catalog::TupleId next_id = d.cfg.num_authors + 1;
  Rng rng(d.cfg.seed + 1);

  auto measure = [&](int batch) {
    QueryCost h = RunCold(&heap_env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(table->QueryPii(datagen::AuthorCols::kInstitution,
                              d.popular_institution, qt, &out));
      return out.size();
    });
    QueryCost u = RunCold(&upi_env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(upi->QueryPtq(d.popular_institution, qt, &out));
      return out.size();
    });
    QueryCost f = RunCold(&frac_env, [&]() -> size_t {
      std::vector<core::PtqMatch> out;
      CheckOk(fractured.QueryPtq(d.popular_institution, qt, &out));
      return out.size();
    });
    std::printf("%-7d %15.3f %10.3f %14.3f %7zu\n", batch, h.sim_ms / 1000.0,
                u.sim_ms / 1000.0, f.sim_ms / 1000.0, f.rows);
  };

  PrintTitle(
      "Figure 9: Q1 (C=QT=0.1) runtime deterioration over update batches "
      "(simulated seconds)");
  std::printf("# authors=%zu  value=%s  batch = +10%% inserts, -1%% deletes\n",
              d.authors.size(), d.popular_institution.c_str());
  std::printf("%-7s %15s %10s %14s %7s\n", "batch", "Unclustered[s]", "UPI[s]",
              "FracturedUPI[s]", "rows");
  measure(0);

  const size_t insert_per_batch = d.authors.size() / 10;
  for (int batch = 1; batch <= batches; ++batch) {
    // Pick delete victims (1% of live) shared by all three systems.
    size_t delete_count = live.size() / 100;
    std::vector<catalog::Tuple> victims;
    for (auto it = live.begin(); it != live.end() && victims.size() < delete_count;) {
      if (rng.Bernoulli(0.02)) {
        victims.push_back(it->second);
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& v : victims) {
      CheckOk(table->Delete(v.id()));
      CheckOk(upi->Delete(v));
      CheckOk(fractured.Delete(v.id()));
    }
    for (size_t i = 0; i < insert_per_batch; ++i) {
      catalog::Tuple t = d.gen->MakeAuthor(next_id++);
      CheckOk(table->Insert(t));
      CheckOk(upi->Insert(t));
      CheckOk(fractured.Insert(t));
      live.emplace(t.id(), t);
    }
    CheckOk(fractured.FlushBuffer());  // one fracture per batch
    heap_env.pool()->FlushAll();
    upi_env.pool()->FlushAll();
    measure(batch);
  }
  return 0;
}
