// Figure 12: Cutoff-index cost model — estimated runtimes for exactly the
// Figure 3 settings (same C sweep, same QTs, same two query values), using
// Cost_cut with the sigmoid pointer-saturation term (Section 6.3).
// Run next to bench_fig03_cutoff_runtime with identical flags; the two
// tables should track each other (EXPERIMENTS.md records the comparison).
#include "bench_util.h"

using namespace upi;
using namespace upi::bench;

int main(int argc, char** argv) {
  flags::Parse(argc, argv);
  DblpData d = MakeDblp(false);
  const std::vector<double> cutoffs = {0.0,  0.05, 0.1, 0.15, 0.2, 0.25,
                                       0.3,  0.35, 0.4, 0.45, 0.5};
  const std::vector<double> qts = {0.05, 0.15, 0.25};

  PrintTitle(
      "Figure 12: Cutoff cost model estimates (Query 1), simulated seconds");
  std::printf("# authors=%zu  non-selective=%s  selective=%s\n",
              d.authors.size(), d.popular_institution.c_str(),
              d.selective_institution.c_str());
  std::printf("%-6s %-10s", "C", "query");
  for (double qt : qts) std::printf(" QT=%-8.2f", qt);
  std::printf("\n");

  for (double c : cutoffs) {
    storage::DbEnv env(32ull << 20, DeviceFromFlags());
    auto upi = core::Upi::Build(&env, "author",
                                datagen::DblpGenerator::AuthorSchema(),
                                AuthorUpiOptions(c), {}, d.authors)
                   .ValueOrDie();
    core::CostModel model(env.params(), core::TableStats::Of(*upi));
    for (const auto& [label, value] :
         {std::pair<const char*, std::string>{"nonsel", d.popular_institution},
          {"select", d.selective_institution}}) {
      std::printf("%-6.2f %-10s", c, label);
      for (double qt : qts) {
        histogram::PtqEstimate est = upi->EstimatePtq(value, qt);
        double ms;
        if (qt < c) {
          ms = model.CutoffQueryMs(est.selectivity, est.cutoff_pointers);
        } else {
          ms = model.CostScanMs() * est.selectivity + model.LookupOverheadMs();
        }
        std::printf(" %8.3fs  ", ms / 1000.0);
      }
      std::printf("\n");
    }
  }
  return 0;
}
