// Shared benchmark harness: fixture builders for the DBLP-like and
// Cartel-like datasets, the cold-query protocol, and table printing.
//
// "Runtime" in every bench is the *simulated* disk time (the quantity the
// paper measured on its 10k-RPM drive; see DESIGN.md for the substitution
// rationale); wall-clock CPU time is printed alongside. All benches accept:
//   --scale=<f>   dataset scale (1.0 = 100k authors / 200k pubs / 200k obs;
//                 ~7 approximates the paper's sizes)
//   --seed=<n>    generator seed
//   --json=<path> machine-readable per-row capture (benches that call
//                 JsonWriter::AddRow), for tracking the perf trajectory
//                 across commits as BENCH_*.json
//   --device=hdd|ssd  device profile the environment impersonates (default
//                 hdd, the paper's spinning disk — bit-identical to before
//                 the flag existed; see sim/device_profile.h)
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/secondary_utree.h"
#include "baseline/unclustered_table.h"
#include "common/flags.h"
#include "core/continuous_upi.h"
#include "core/cost_model.h"
#include "core/fractured_upi.h"
#include "core/upi.h"
#include "datagen/cartel.h"
#include "datagen/dblp.h"
#include "exec/aggregate.h"
#include "storage/db_env.h"

namespace upi::bench {

struct QueryCost {
  double sim_ms = 0.0;
  double wall_ms = 0.0;
  size_t rows = 0;
};

/// The shared --device flag, resolved to a profile. Exits on unknown names.
inline sim::DeviceProfile DeviceFromFlags() {
  std::string name = flags::GetString("device", "hdd");
  sim::DeviceProfile profile;
  if (!sim::DeviceProfile::Parse(name, &profile)) {
    std::fprintf(stderr, "bench: unknown --device=%s (want hdd or ssd)\n",
                 name.c_str());
    std::exit(2);
  }
  return profile;
}

/// Aborts with a message on error (benches have no meaningful recovery).
inline void CheckOk(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

/// Runs `fn` (returning a row count) against a cold cache and reports costs.
inline QueryCost RunCold(storage::DbEnv* env, const std::function<size_t()>& fn) {
  env->ColdCache();
  sim::StatsWindow window(env->disk());
  auto t0 = std::chrono::steady_clock::now();
  QueryCost cost;
  cost.rows = fn();
  auto t1 = std::chrono::steady_clock::now();
  cost.sim_ms = window.ElapsedMs();
  cost.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return cost;
}

/// Measures a maintenance operation (warm cache, but flushes afterwards so
/// deferred writes are charged — the paper's maintenance numbers include the
/// write-back).
inline QueryCost RunMaintenance(storage::DbEnv* env,
                                const std::function<size_t()>& fn) {
  env->pool()->FlushAll();
  env->disk()->ResetHead();
  sim::StatsWindow window(env->disk());
  auto t0 = std::chrono::steady_clock::now();
  QueryCost cost;
  cost.rows = fn();
  env->pool()->FlushAll();
  auto t1 = std::chrono::steady_clock::now();
  cost.sim_ms = window.ElapsedMs();
  cost.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return cost;
}

inline void PrintTitle(const std::string& title) {
  std::printf("# %s\n", title.c_str());
}

/// Per-row JSON capture behind the --json=<path> flag. Each AddRow records
/// one measured configuration; the destructor writes the array:
///   [{"bench": ..., "config": ..., "sim_ms": ..., "wall_ms": ..., "rows": ...}, ...]
/// A no-op when --json is absent.
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench)
      : bench_(std::move(bench)), path_(flags::GetString("json", "")) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void AddRow(const std::string& config, const QueryCost& cost) {
    if (path_.empty()) return;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "  {\"bench\": \"%s\", \"config\": \"%s\", \"sim_ms\": %.3f,"
                  " \"wall_ms\": %.3f, \"rows\": %zu}",
                  bench_.c_str(), config.c_str(), cost.sim_ms, cost.wall_ms,
                  cost.rows);
    rows_.push_back(buf);
  }

  ~JsonWriter() {
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write --json=%s\n", path_.c_str());
      return;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::string> rows_;
};

// ---------------------------------------------------------------------------
// DBLP fixtures
// ---------------------------------------------------------------------------

struct DblpData {
  datagen::DblpConfig cfg;
  std::unique_ptr<datagen::DblpGenerator> gen;
  std::vector<catalog::Tuple> authors;
  std::vector<catalog::Tuple> publications;  // filled only when requested
  std::string popular_institution;           // the "MIT" (non-selective)
  std::string selective_institution;         // ~300 matches at scale 1
  std::string mid_country;                   // the "Japan"
};

inline DblpData MakeDblp(bool with_publications) {
  DblpData d;
  double scale = flags::GetDouble("scale", 1.0);
  d.cfg = datagen::DblpConfig{}.Scaled(scale);
  d.cfg.seed = static_cast<uint64_t>(flags::GetInt64("seed", 42));
  d.gen = std::make_unique<datagen::DblpGenerator>(d.cfg);
  d.authors = d.gen->GenerateAuthors();
  if (with_publications) {
    d.publications = d.gen->GeneratePublications(d.authors);
  }
  d.popular_institution = d.gen->PopularInstitution();
  d.selective_institution = datagen::FindValueWithApproxCount(
      d.authors, datagen::AuthorCols::kInstitution,
      static_cast<uint64_t>(300 * scale) + 30);
  d.mid_country = d.gen->MidCountry();
  return d;
}

inline core::UpiOptions AuthorUpiOptions(double cutoff) {
  core::UpiOptions opt;
  opt.cluster_column = datagen::AuthorCols::kInstitution;
  opt.cutoff = cutoff;
  return opt;
}

inline core::UpiOptions PublicationUpiOptions(double cutoff) {
  core::UpiOptions opt;
  opt.cluster_column = datagen::PublicationCols::kInstitution;
  opt.cutoff = cutoff;
  return opt;
}

// ---------------------------------------------------------------------------
// Cartel fixtures
// ---------------------------------------------------------------------------

struct CartelData {
  datagen::CartelConfig cfg;
  std::unique_ptr<datagen::CartelGenerator> gen;
  std::vector<catalog::Tuple> observations;
};

inline CartelData MakeCartel() {
  CartelData d;
  double scale = flags::GetDouble("scale", 1.0);
  d.cfg = datagen::CartelConfig{}.Scaled(scale);
  d.cfg.seed = static_cast<uint64_t>(flags::GetInt64("seed", 42));
  d.gen = std::make_unique<datagen::CartelGenerator>(d.cfg);
  d.observations = d.gen->GenerateObservations();
  return d;
}

}  // namespace upi::bench
